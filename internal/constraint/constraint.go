// Package constraint models the paper's ML application constraints (§3):
// the mandatory Min Accuracy (F1) and Max Search Time, and the optional Max
// Feature Set Size, Min Equal Opportunity, Min Safety, and Min Privacy (ε).
// It provides the constraint taxonomy of Table 1, the aggregated distance
// objective of Eq. 1 and its utility extension Eq. 2 (§4.3), and the
// randomized constraint-space sampler of Listing 1 used by the benchmark.
package constraint

import (
	"fmt"
	"math"
	"strings"

	"github.com/declarative-fs/dfs/internal/xrand"
)

// Set is a declarative constraint set over one ML scenario. Zero values mean
// "not specified" for the optional constraints; MaxFeatureFrac uses 1 (the
// whole feature set) as its off value, mirroring Listing 1.
type Set struct {
	// MinF1 is the mandatory accuracy constraint (paper: F1 ≥ MinF1).
	MinF1 float64
	// MaxSearchCost is the mandatory search budget in cost units (the
	// simulated equivalent of the paper's max search time).
	MaxSearchCost float64
	// MaxFeatureFrac limits the selected fraction of the original feature
	// set; 1 (or 0) disables it.
	MaxFeatureFrac float64
	// MinEO is the minimum equal opportunity; 0 disables it.
	MinEO float64
	// MinSafety is the minimum empirical robustness; 0 disables it.
	MinSafety float64
	// PrivacyEps is the differential privacy budget ε; 0 disables privacy.
	// Privacy is enforced by construction (DP model variant), so it never
	// contributes to the distance objective.
	PrivacyEps float64
}

// HasFeatureCap reports whether a feature-set-size constraint is active.
func (s Set) HasFeatureCap() bool { return s.MaxFeatureFrac > 0 && s.MaxFeatureFrac < 1 }

// HasEO reports whether a fairness constraint is active.
func (s Set) HasEO() bool { return s.MinEO > 0 }

// HasSafety reports whether a safety constraint is active.
func (s Set) HasSafety() bool { return s.MinSafety > 0 }

// HasPrivacy reports whether a differential privacy constraint is active.
func (s Set) HasPrivacy() bool { return s.PrivacyEps > 0 }

// ValidationError reports a malformed constraint declaration. It is typed so
// failure classification (core.Classify) can file these under the
// constraint-violation category instead of the generic internal one.
type ValidationError struct{ msg string }

func (e *ValidationError) Error() string { return e.msg }

func validationErrorf(format string, args ...any) error {
	return &ValidationError{msg: fmt.Sprintf(format, args...)}
}

// Validate checks threshold ranges; failures are *ValidationError.
func (s Set) Validate() error {
	switch {
	case s.MinF1 < 0 || s.MinF1 > 1:
		return validationErrorf("constraint: MinF1 %v out of [0,1]", s.MinF1)
	case s.MaxSearchCost <= 0:
		return validationErrorf("constraint: MaxSearchCost %v must be positive", s.MaxSearchCost)
	case s.MaxFeatureFrac < 0 || s.MaxFeatureFrac > 1:
		return validationErrorf("constraint: MaxFeatureFrac %v out of [0,1]", s.MaxFeatureFrac)
	case s.MinEO < 0 || s.MinEO > 1:
		return validationErrorf("constraint: MinEO %v out of [0,1]", s.MinEO)
	case s.MinSafety < 0 || s.MinSafety > 1:
		return validationErrorf("constraint: MinSafety %v out of [0,1]", s.MinSafety)
	case s.PrivacyEps < 0:
		return validationErrorf("constraint: PrivacyEps %v negative", s.PrivacyEps)
	}
	return nil
}

// Scores holds the measured metrics of one evaluated feature subset.
type Scores struct {
	// F1 is the validation (or test) F1 score.
	F1 float64
	// EO is the equal opportunity score.
	EO float64
	// Safety is the empirical robustness score; only meaningful when the
	// set declares a safety constraint (it is expensive to measure).
	Safety float64
	// FeatureFrac is the selected fraction of the original feature set.
	FeatureFrac float64
}

// Distance implements Eq. 1: the sum of squared distances of every violated
// constraint's score to its threshold. Privacy and search time never
// contribute (privacy holds by construction; time is the budget meter's
// job). A zero distance means all evaluable constraints are satisfied.
func (s Set) Distance(sc Scores) float64 {
	d := 0.0
	if f1 := worstIfNaN(sc.F1, 0); f1 < s.MinF1 {
		d += sq(f1 - s.MinF1)
	}
	if frac := worstIfNaN(sc.FeatureFrac, 1); s.HasFeatureCap() && frac > s.MaxFeatureFrac {
		d += sq(frac - s.MaxFeatureFrac)
	}
	if eo := worstIfNaN(sc.EO, 0); s.HasEO() && eo < s.MinEO {
		d += sq(eo - s.MinEO)
	}
	if sf := worstIfNaN(sc.Safety, 0); s.HasSafety() && sf < s.MinSafety {
		d += sq(sf - s.MinSafety)
	}
	return d
}

// worstIfNaN substitutes the pessimal value for a NaN score so a corrupted
// measurement reads as a maximal violation: every threshold comparison with
// NaN is false, so without the substitution a poisoned score would silently
// satisfy its constraint.
func worstIfNaN(v, worst float64) float64 {
	if math.IsNaN(v) {
		return worst
	}
	return v
}

// Satisfied reports whether every evaluable constraint holds.
func (s Set) Satisfied(sc Scores) bool { return s.Distance(sc) == 0 }

// Objective implements Eq. 2: the distance while any constraint is violated,
// and the negative utility once all are satisfied, so that minimizing the
// objective first satisfies constraints and then maximizes utility. utility
// is typically the F1 score; pass 0 when running in pure-satisfaction mode.
func (s Set) Objective(sc Scores, utility float64) float64 {
	if d := s.Distance(sc); d > 0 {
		return d
	}
	return -utility
}

// String renders the active constraints compactly.
func (s Set) String() string {
	parts := []string{fmt.Sprintf("F1>=%.2f", s.MinF1)}
	if s.HasFeatureCap() {
		parts = append(parts, fmt.Sprintf("features<=%.0f%%", 100*s.MaxFeatureFrac))
	}
	if s.HasEO() {
		parts = append(parts, fmt.Sprintf("EO>=%.2f", s.MinEO))
	}
	if s.HasSafety() {
		parts = append(parts, fmt.Sprintf("safety>=%.2f", s.MinSafety))
	}
	if s.HasPrivacy() {
		parts = append(parts, fmt.Sprintf("eps=%.2f", s.PrivacyEps))
	}
	parts = append(parts, fmt.Sprintf("budget=%.0f", s.MaxSearchCost))
	return strings.Join(parts, ", ")
}

// Vector encodes the set as the fixed-width feature block the DFS optimizer
// consumes (ρ_constraints in §5.2): one slot per benchmark constraint.
func (s Set) Vector() []float64 {
	frac := s.MaxFeatureFrac
	if frac == 0 {
		frac = 1
	}
	return []float64{s.MinF1, frac, s.MinEO, s.MinSafety, s.PrivacyEps, s.MaxSearchCost}
}

// VectorLen is the length of Vector().
const VectorLen = 6

func sq(v float64) float64 { return v * v }

// SamplerConfig bounds the Listing 1 fuzzer.
type SamplerConfig struct {
	// MinSearchCost / MaxSearchCost bound the uniform search budget draw
	// (the paper samples 10 s – 3 h).
	MinSearchCost, MaxSearchCost float64
}

// DefaultSamplerConfig mirrors the paper's 10 s – 3 h window, expressed in
// cost units (1 unit ≈ 1 s of the reference machine; see internal/budget).
func DefaultSamplerConfig() SamplerConfig {
	return SamplerConfig{MinSearchCost: 10, MaxSearchCost: 10800}
}

// Sample draws a random constraint set following Listing 1: mandatory
// MinF1 ~ U(0.5, 1) and search budget ~ U(min, max); optional feature cap
// U(0, 1), EO and safety U(0.8, 1) each present with probability ½, and a
// log-normal(0, 1) privacy ε present with probability ½.
func Sample(rng *xrand.RNG, cfg SamplerConfig) Set {
	s := Set{
		MinF1:          rng.Uniform(0.5, 1),
		MaxSearchCost:  rng.Uniform(cfg.MinSearchCost, cfg.MaxSearchCost),
		MaxFeatureFrac: 1,
	}
	if rng.Bool(0.5) {
		s.MaxFeatureFrac = rng.Float64()
	}
	if rng.Bool(0.5) {
		s.MinEO = rng.Uniform(0.8, 1)
	}
	if rng.Bool(0.5) {
		s.MinSafety = rng.Uniform(0.8, 1)
	}
	if rng.Bool(0.5) {
		s.PrivacyEps = rng.LogNormal(0, 1)
	}
	return s
}
