package model

import (
	"fmt"
	"math"

	"github.com/declarative-fs/dfs/internal/dataset"
)

// LinearSVM is an l2-regularized linear support vector machine trained by
// deterministic full-batch subgradient descent on the hinge loss. It is used
// by the feature-set transferability experiment (Table 7).
type LinearSVM struct {
	// C is the inverse regularization strength.
	C float64
	// Epochs bounds the number of subgradient steps.
	Epochs int

	w        []float64
	b        float64
	fitted   bool
	isConst  bool
	constant int
}

// NewLinearSVM returns an untrained linear SVM.
func NewLinearSVM(c float64) *LinearSVM {
	return &LinearSVM{C: c, Epochs: 150}
}

// Name implements Classifier.
func (m *LinearSVM) Name() string { return string(KindSVM) }

// Clone implements Classifier.
func (m *LinearSVM) Clone() Classifier { return &LinearSVM{C: m.C, Epochs: m.Epochs} }

// Fit implements Classifier.
func (m *LinearSVM) Fit(d *dataset.Dataset) error {
	n, p := d.Rows(), d.Features()
	if n == 0 {
		return fmt.Errorf("model: SVM fit on empty dataset")
	}
	m.isConst = false
	zero, one := d.ClassCounts()
	if zero == 0 || one == 0 {
		m.isConst, m.constant, m.fitted = true, majorityLabel(d.Y), true
		m.w = make([]float64, p)
		return nil
	}
	m.w = make([]float64, p)
	m.b = 0
	lambda := 1 / (m.C * float64(n))
	grad := make([]float64, p)
	for epoch := 0; epoch < m.Epochs; epoch++ {
		for j := range grad {
			grad[j] = 0
		}
		gb := 0.0
		for i := 0; i < n; i++ {
			row := d.X.Row(i)
			y := 2*float64(d.Y[i]) - 1
			margin := y * m.margin(row)
			if margin < 1 {
				for j, v := range row {
					grad[j] -= y * v
				}
				gb -= y
			}
		}
		inv := 1 / float64(n)
		// Decaying step size keeps the subgradient method stable; the l2
		// term uses a proximal step so small C cannot diverge.
		lr := 1.0 / (1 + 0.05*float64(epoch))
		shrink := 1 / (1 + lr*lambda)
		for j := range m.w {
			m.w[j] = (m.w[j] - lr*grad[j]*inv) * shrink
		}
		m.b -= lr * gb * inv
	}
	m.fitted = true
	return nil
}

func (m *LinearSVM) margin(x []float64) float64 {
	s := m.b
	for j, v := range x {
		s += m.w[j] * v
	}
	return s
}

// Predict implements Classifier.
func (m *LinearSVM) Predict(x []float64) int {
	if m.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// PredictProba implements Classifier: a logistic squashing of the margin
// (a fixed-slope Platt calibration).
func (m *LinearSVM) PredictProba(x []float64) float64 {
	if !m.fitted {
		return 0.5
	}
	if m.isConst {
		return float64(m.constant)
	}
	return 1 / (1 + math.Exp(-2*m.margin(x)))
}

// FeatureImportances implements Importancer: the absolute coefficients.
func (m *LinearSVM) FeatureImportances() []float64 {
	out := make([]float64, len(m.w))
	for j, v := range m.w {
		out[j] = math.Abs(v)
	}
	return out
}
