package model

import (
	"fmt"
	"math"

	"github.com/declarative-fs/dfs/internal/dataset"
)

// GaussianNB is Gaussian naive Bayes with a variance floor. Following the
// scikit-learn convention, each feature's per-class variance is increased by
// VarSmoothing times the largest feature variance in the training data.
type GaussianNB struct {
	// VarSmoothing is the portion of the largest feature variance added to
	// all per-class variances for numerical stability.
	VarSmoothing float64

	logPrior [2]float64
	mean     [2][]float64
	variance [2][]float64
	fitted   bool
	isConst  bool
	constant int
}

// NewGaussianNB returns an untrained Gaussian naive Bayes classifier.
func NewGaussianNB(varSmoothing float64) *GaussianNB {
	return &GaussianNB{VarSmoothing: varSmoothing}
}

// Name implements Classifier.
func (m *GaussianNB) Name() string { return string(KindNB) }

// Clone implements Classifier.
func (m *GaussianNB) Clone() Classifier { return &GaussianNB{VarSmoothing: m.VarSmoothing} }

// Fit implements Classifier.
func (m *GaussianNB) Fit(d *dataset.Dataset) error {
	n, p := d.Rows(), d.Features()
	if n == 0 {
		return fmt.Errorf("model: NB fit on empty dataset")
	}
	m.isConst = false
	zero, one := d.ClassCounts()
	if zero == 0 || one == 0 {
		m.isConst, m.constant, m.fitted = true, majorityLabel(d.Y), true
		return nil
	}
	counts := [2]float64{float64(zero), float64(one)}
	for c := 0; c < 2; c++ {
		m.logPrior[c] = math.Log(counts[c] / float64(n))
		m.mean[c] = make([]float64, p)
		m.variance[c] = make([]float64, p)
	}
	for i := 0; i < n; i++ {
		row := d.X.Row(i)
		c := d.Y[i]
		for j, v := range row {
			m.mean[c][j] += v
		}
	}
	for c := 0; c < 2; c++ {
		for j := range m.mean[c] {
			m.mean[c][j] /= counts[c]
		}
	}
	for i := 0; i < n; i++ {
		row := d.X.Row(i)
		c := d.Y[i]
		for j, v := range row {
			dlt := v - m.mean[c][j]
			m.variance[c][j] += dlt * dlt
		}
	}
	// Global max feature variance for the smoothing floor.
	maxVar := 0.0
	globalMean := make([]float64, p)
	for i := 0; i < n; i++ {
		for j, v := range d.X.Row(i) {
			globalMean[j] += v
		}
	}
	for j := range globalMean {
		globalMean[j] /= float64(n)
	}
	globalVar := make([]float64, p)
	for i := 0; i < n; i++ {
		for j, v := range d.X.Row(i) {
			dlt := v - globalMean[j]
			globalVar[j] += dlt * dlt
		}
	}
	for j := range globalVar {
		globalVar[j] /= float64(n)
		if globalVar[j] > maxVar {
			maxVar = globalVar[j]
		}
	}
	floor := m.VarSmoothing * maxVar
	if floor <= 0 {
		floor = 1e-12
	}
	for c := 0; c < 2; c++ {
		for j := range m.variance[c] {
			m.variance[c][j] = m.variance[c][j]/counts[c] + floor
		}
	}
	m.fitted = true
	return nil
}

func (m *GaussianNB) logLikelihood(c int, x []float64) float64 {
	ll := m.logPrior[c]
	for j, v := range x {
		va := m.variance[c][j]
		dlt := v - m.mean[c][j]
		ll += -0.5*math.Log(2*math.Pi*va) - dlt*dlt/(2*va)
	}
	return ll
}

// Predict implements Classifier.
func (m *GaussianNB) Predict(x []float64) int {
	if m.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// PredictProba implements Classifier.
func (m *GaussianNB) PredictProba(x []float64) float64 {
	if !m.fitted {
		return 0.5
	}
	if m.isConst {
		return float64(m.constant)
	}
	l0, l1 := m.logLikelihood(0, x), m.logLikelihood(1, x)
	// Normalize in log space to avoid under/overflow.
	mx := math.Max(l0, l1)
	e0, e1 := math.Exp(l0-mx), math.Exp(l1-mx)
	return e1 / (e0 + e1)
}

// Stats exposes the fitted per-class means and variances; the differential
// privacy wrapper perturbs them.
func (m *GaussianNB) Stats() (mean, variance [2][]float64, logPrior [2]float64) {
	return m.mean, m.variance, m.logPrior
}

// SetStats overwrites the fitted parameters; used by the DP wrapper.
func (m *GaussianNB) SetStats(mean, variance [2][]float64, logPrior [2]float64) {
	m.mean = mean
	m.variance = variance
	m.logPrior = logPrior
	m.fitted = true
	m.isConst = false
}
