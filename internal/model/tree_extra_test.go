package model

import (
	"testing"

	"github.com/declarative-fs/dfs/internal/dataset"
	"github.com/declarative-fs/dfs/internal/linalg"
	"github.com/declarative-fs/dfs/internal/xrand"
)

func TestThresholdCandidatesSmallSets(t *testing.T) {
	// Fewer distinct values than the cap: midpoints between all neighbours.
	cands := thresholdCandidates([]float64{0, 1, 0, 1}, 24)
	if len(cands) != 1 || cands[0] != 0.5 {
		t.Fatalf("binary feature candidates %v", cands)
	}
	// Constant features yield no candidates.
	if got := thresholdCandidates([]float64{3, 3, 3}, 24); got != nil {
		t.Fatalf("constant feature candidates %v", got)
	}
	// Many distinct values clamp to the cap.
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	cands = thresholdCandidates(vals, 8)
	if len(cands) > 8 {
		t.Fatalf("cap exceeded: %d candidates", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i] <= cands[i-1] {
			t.Fatal("candidates not strictly increasing")
		}
	}
}

func TestTreeMtryRequiresRNG(t *testing.T) {
	d := separable(40, 1)
	tr := &Tree{MaxDepth: 2, MinLeaf: 1, Mtry: 1}
	if err := tr.Fit(d); err == nil {
		t.Fatal("Mtry without RNG accepted")
	}
	tr.Rng = xrand.New(1)
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
}

func TestTreeWeightLengthValidated(t *testing.T) {
	d := separable(40, 2)
	tr := NewTree(2)
	if err := tr.FitWeighted(d, []float64{1, 2, 3}); err == nil {
		t.Fatal("mismatched weights accepted")
	}
}

func TestTreePureNodeBecomesLeaf(t *testing.T) {
	// All-one labels: the root must be a leaf predicting 1 regardless of
	// depth budget.
	n := 30
	x := linalg.NewMatrix(n, 2)
	y := make([]int, n)
	rng := xrand.New(3)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.Float64())
		x.Set(i, 1, rng.Float64())
		y[i] = 1
	}
	d := &dataset.Dataset{Name: "pure", X: x, Y: y, Sensitive: make([]int, n)}
	tr := NewTree(5)
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 0 || tr.LeafCount() != 1 {
		t.Fatalf("pure node split anyway: depth %d leaves %d", tr.Depth(), tr.LeafCount())
	}
	if tr.Predict([]float64{0.5, 0.5}) != 1 {
		t.Fatal("pure leaf predicts wrong class")
	}
}

func TestForestImportanceWidth(t *testing.T) {
	d := xorData(120, 4)
	f := NewForest(10, 5)
	if err := f.Fit(d); err != nil {
		t.Fatal(err)
	}
	if got := len(f.FeatureImportances()); got != d.Features() {
		t.Fatalf("forest importances %d, want %d", got, d.Features())
	}
	var unfitted Forest
	if unfitted.FeatureImportances() != nil {
		t.Fatal("unfitted forest importances should be nil")
	}
}

func TestSVMGridSharesLRShape(t *testing.T) {
	g := DefaultGrid(KindSVM)
	if len(g) != 6 || g[0].Kind != KindSVM {
		t.Fatalf("SVM grid %+v", g)
	}
}

func TestMajorityLabel(t *testing.T) {
	if majorityLabel([]int{1, 1, 0}) != 1 {
		t.Fatal("majority 1 wrong")
	}
	if majorityLabel([]int{0, 0, 1}) != 0 {
		t.Fatal("majority 0 wrong")
	}
	if majorityLabel([]int{0, 1}) != 0 {
		t.Fatal("tie should default to 0")
	}
}
