package model

import (
	"math"
	"testing"

	"github.com/declarative-fs/dfs/internal/dataset"
	"github.com/declarative-fs/dfs/internal/linalg"
	"github.com/declarative-fs/dfs/internal/parallel"
	"github.com/declarative-fs/dfs/internal/xrand"
)

// referenceLogRegFit is the pre-rewrite training loop — separate rawScore
// and gradient row walks, flat (unchunked) gradient accumulation — kept as
// the oracle for the fused chunk-reduced rewrite.
func referenceLogRegFit(m *LogReg, d *dataset.Dataset) {
	n, p := d.Rows(), d.Features()
	m.w = make([]float64, p)
	m.b = 0
	lambda := 0.0
	if m.C > 0 {
		lambda = 1 / (m.C * float64(n))
	}
	grad := make([]float64, p)
	for epoch := 0; epoch < m.Epochs; epoch++ {
		for j := range grad {
			grad[j] = 0
		}
		gb := 0.0
		for i := 0; i < n; i++ {
			row := d.X.Row(i)
			s := m.b
			for j, v := range row {
				s += m.w[j] * v
			}
			err := sigmoid(s) - float64(d.Y[i])
			for j, v := range row {
				grad[j] += err * v
			}
			gb += err
		}
		inv := 1 / float64(n)
		lr := m.LearningRate
		shrink := 1 / (1 + lr*lambda)
		for j := range m.w {
			m.w[j] = (m.w[j] - lr*grad[j]*inv) * shrink
		}
		m.b -= lr * gb * inv
	}
	m.fitted = true
}

func fuzzBinary(rng *xrand.RNG, rows, cols int) *dataset.Dataset {
	x := linalg.NewMatrix(rows, cols)
	y := make([]int, rows)
	for i := 0; i < rows; i++ {
		y[i] = rng.Intn(2)
		for j := 0; j < cols; j++ {
			v := rng.Float64()
			if y[i] == 1 && j == 0 {
				v = v*0.5 + 0.5
			}
			x.Set(i, j, v)
		}
	}
	// Guarantee both classes so Fit takes the gradient path.
	y[0], y[rows-1] = 0, 1
	return &dataset.Dataset{Name: "fuzz", X: x, Y: y, Sensitive: make([]int, rows)}
}

// TestLogRegFitMatchesReferenceFuzzed is the coefficient-equivalence test
// for the fused pass. Chunked summation reorders floating-point adds, so
// coefficients agree to tight tolerance in general — and bit-exactly when
// the data fits one chunk, where the fused pass accumulates in the exact
// row order of the reference.
func TestLogRegFitMatchesReferenceFuzzed(t *testing.T) {
	rng := xrand.New(53)
	for trial := 0; trial < 20; trial++ {
		rows := 2 + rng.Intn(400)
		cols := 1 + rng.Intn(10)
		d := fuzzBinary(rng, rows, cols)
		c := []float64{0.01, 1, 100}[trial%3]

		ref := NewLogReg(c)
		referenceLogRegFit(ref, d)
		got := NewLogReg(c)
		got.Workers = trial % 3
		if err := got.Fit(d); err != nil {
			t.Fatal(err)
		}

		exact := parallel.NumChunks(rows) == 1
		for j := range ref.w {
			diff := math.Abs(got.w[j] - ref.w[j])
			if exact && diff != 0 {
				t.Fatalf("trial %d (rows=%d, single chunk) w[%d]: %v != %v (want bit-exact)",
					trial, rows, j, got.w[j], ref.w[j])
			}
			if diff > 1e-9 {
				t.Fatalf("trial %d (rows=%d) w[%d]: |%v - %v| = %g exceeds 1e-9",
					trial, rows, j, got.w[j], ref.w[j], diff)
			}
		}
		if diff := math.Abs(got.b - ref.b); diff > 1e-9 || (exact && diff != 0) {
			t.Fatalf("trial %d: intercept %v != %v", trial, got.b, ref.b)
		}
	}
}

// TestLogRegFitBitIdenticalAcrossWorkers pins the worker-knob contract: the
// chunk geometry and merge order depend only on the row count, so training
// is bit-identical at every worker count.
func TestLogRegFitBitIdenticalAcrossWorkers(t *testing.T) {
	d := fuzzBinary(xrand.New(59), 700, 9)// well above one chunk

	want := NewLogReg(1)
	want.Workers = 1
	if err := want.Fit(d); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 0} {
		got := NewLogReg(1)
		got.Workers = workers
		if err := got.Fit(d); err != nil {
			t.Fatal(err)
		}
		for j := range want.w {
			if math.Float64bits(got.w[j]) != math.Float64bits(want.w[j]) {
				t.Fatalf("workers=%d w[%d]: %v != %v (not bit-identical)", workers, j, got.w[j], want.w[j])
			}
		}
		if math.Float64bits(got.b) != math.Float64bits(want.b) {
			t.Fatalf("workers=%d intercept: %v != %v", workers, got.b, want.b)
		}
	}
}

func TestLogRegCloneKeepsWorkers(t *testing.T) {
	m := NewLogReg(2)
	m.Workers = 5
	clone, ok := m.Clone().(*LogReg)
	if !ok || clone.Workers != 5 {
		t.Fatalf("Clone dropped Workers: %+v", clone)
	}
}

// TestLogRegFitAllocCeiling is the alloc tripwire for the training loop:
// allocations must not scale with epochs (the per-epoch state is the weight
// vector, the partial buffer, and the merged gradient, all hoisted).
func TestLogRegFitAllocCeiling(t *testing.T) {
	if parallel.RaceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	d := fuzzBinary(xrand.New(61), 300, 12)
	allocs := testing.AllocsPerRun(5, func() {
		m := NewLogReg(1)
		if err := m.Fit(d); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 10 {
		t.Fatalf("LogReg.Fit allocates %.0f objects, ceiling 10", allocs)
	}
}

func BenchmarkLogRegFit(b *testing.B) {
	d := fuzzBinary(xrand.New(67), 960, 20)
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := NewLogReg(1)
			if err := m.Fit(d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference-twopass", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := NewLogReg(1)
			referenceLogRegFit(m, d)
		}
	})
}
