package model

import (
	"fmt"
	"math"
	"sort"

	"github.com/declarative-fs/dfs/internal/dataset"
	"github.com/declarative-fs/dfs/internal/xrand"
)

// Tree is a CART binary decision tree using weighted Gini impurity, with a
// depth limit as the tuned hyperparameter (§6.1 optimizes max depth in
// [1, 7]). It supports per-sample weights (used for balanced class weights in
// the random forest) and optional per-split random feature subsampling
// (mtry), which the forest uses.
type Tree struct {
	// MaxDepth limits the tree depth; depth 0 is a single leaf.
	MaxDepth int
	// MinLeaf is the minimum weighted number of samples per leaf.
	MinLeaf float64
	// MaxThresholds caps the number of candidate split thresholds evaluated
	// per feature (quantile cuts); 0 means 24.
	MaxThresholds int
	// Mtry, when positive, samples that many candidate features per split
	// using Rng (random forest mode).
	Mtry int
	// Rng drives Mtry sampling; required when Mtry > 0.
	Rng *xrand.RNG

	root        *treeNode
	nFeatures   int
	importances []float64
	fitted      bool
}

type treeNode struct {
	feature     int
	threshold   float64
	left, right *treeNode
	proba       float64 // P(y=1) at a leaf
	leaf        bool
}

// NewTree returns an untrained CART tree with the given depth limit.
func NewTree(maxDepth int) *Tree {
	return &Tree{MaxDepth: maxDepth, MinLeaf: 2}
}

// Name implements Classifier.
func (m *Tree) Name() string { return string(KindDT) }

// Clone implements Classifier.
func (m *Tree) Clone() Classifier {
	return &Tree{MaxDepth: m.MaxDepth, MinLeaf: m.MinLeaf, MaxThresholds: m.MaxThresholds,
		Mtry: m.Mtry, Rng: m.Rng}
}

// Fit implements Classifier with unit sample weights.
func (m *Tree) Fit(d *dataset.Dataset) error {
	return m.FitWeighted(d, nil)
}

// FitWeighted trains with per-sample weights; nil means unit weights.
func (m *Tree) FitWeighted(d *dataset.Dataset, weights []float64) error {
	n := d.Rows()
	if n == 0 {
		return fmt.Errorf("model: DT fit on empty dataset")
	}
	if weights != nil && len(weights) != n {
		return fmt.Errorf("model: DT weight length %d != rows %d", len(weights), n)
	}
	if m.Mtry > 0 && m.Rng == nil {
		return fmt.Errorf("model: DT with Mtry > 0 needs an RNG")
	}
	if weights == nil {
		weights = make([]float64, n)
		for i := range weights {
			weights[i] = 1
		}
	}
	m.nFeatures = d.Features()
	m.importances = make([]float64, m.nFeatures)
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	m.root = m.build(d, weights, rows, 0)
	// Normalize importances to sum to 1 (when any split happened).
	total := 0.0
	for _, v := range m.importances {
		total += v
	}
	if total > 0 {
		for j := range m.importances {
			m.importances[j] /= total
		}
	}
	m.fitted = true
	return nil
}

func weightedCounts(d *dataset.Dataset, w []float64, rows []int) (w0, w1 float64) {
	for _, i := range rows {
		if d.Y[i] == 1 {
			w1 += w[i]
		} else {
			w0 += w[i]
		}
	}
	return w0, w1
}

func gini(w0, w1 float64) float64 {
	total := w0 + w1
	if total == 0 {
		return 0
	}
	p0, p1 := w0/total, w1/total
	return 1 - p0*p0 - p1*p1
}

func (m *Tree) build(d *dataset.Dataset, w []float64, rows []int, depth int) *treeNode {
	w0, w1 := weightedCounts(d, w, rows)
	total := w0 + w1
	node := &treeNode{leaf: true, proba: 0.5}
	if total > 0 {
		node.proba = w1 / total
	}
	if depth >= m.MaxDepth || w0 == 0 || w1 == 0 || total < 2*m.MinLeaf {
		return node
	}
	feat, thr, gain := m.bestSplit(d, w, rows, w0, w1)
	if feat < 0 || gain <= 1e-12 {
		return node
	}
	var left, right []int
	for _, i := range rows {
		if d.X.At(i, feat) <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return node
	}
	m.importances[feat] += total * gain
	node.leaf = false
	node.feature = feat
	node.threshold = thr
	node.left = m.build(d, w, left, depth+1)
	node.right = m.build(d, w, right, depth+1)
	return node
}

// bestSplit scans candidate features and quantile thresholds for the split
// with the largest weighted Gini decrease.
func (m *Tree) bestSplit(d *dataset.Dataset, w []float64, rows []int, w0, w1 float64) (feat int, thr, gain float64) {
	parentGini := gini(w0, w1)
	total := w0 + w1
	feat = -1
	maxThr := m.MaxThresholds
	if maxThr <= 0 {
		maxThr = 24
	}

	candidates := make([]int, 0, m.nFeatures)
	if m.Mtry > 0 && m.Mtry < m.nFeatures {
		candidates = append(candidates, m.Rng.Sample(m.nFeatures, m.Mtry)...)
		sort.Ints(candidates)
	} else {
		for j := 0; j < m.nFeatures; j++ {
			candidates = append(candidates, j)
		}
	}

	vals := make([]float64, 0, len(rows))
	for _, j := range candidates {
		vals = vals[:0]
		for _, i := range rows {
			vals = append(vals, d.X.At(i, j))
		}
		cuts := thresholdCandidates(vals, maxThr)
		for _, t := range cuts {
			var l0, l1 float64
			for k, i := range rows {
				if vals[k] <= t {
					if d.Y[i] == 1 {
						l1 += w[i]
					} else {
						l0 += w[i]
					}
				}
			}
			r0, r1 := w0-l0, w1-l1
			lTot, rTot := l0+l1, r0+r1
			if lTot < m.MinLeaf || rTot < m.MinLeaf {
				continue
			}
			g := parentGini - (lTot*gini(l0, l1)+rTot*gini(r0, r1))/total
			if g > gain {
				feat, thr, gain = j, t, g
			}
		}
	}
	return feat, thr, gain
}

// thresholdCandidates returns midpoints between up to maxThr+1 quantiles of
// the distinct values.
func thresholdCandidates(vals []float64, maxThr int) []float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	uniq := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	if len(uniq) < 2 {
		return nil
	}
	if len(uniq)-1 <= maxThr {
		out := make([]float64, 0, len(uniq)-1)
		for i := 0; i+1 < len(uniq); i++ {
			out = append(out, (uniq[i]+uniq[i+1])/2)
		}
		return out
	}
	out := make([]float64, 0, maxThr)
	for k := 1; k <= maxThr; k++ {
		idx := len(uniq) * k / (maxThr + 1)
		if idx >= len(uniq)-1 {
			idx = len(uniq) - 2
		}
		t := (uniq[idx] + uniq[idx+1]) / 2
		if len(out) == 0 || t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// Predict implements Classifier.
func (m *Tree) Predict(x []float64) int {
	if m.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// PredictProba implements Classifier.
func (m *Tree) PredictProba(x []float64) float64 {
	if !m.fitted {
		return 0.5
	}
	n := m.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.proba
}

// FeatureImportances implements Importancer: normalized total Gini decrease
// per feature.
func (m *Tree) FeatureImportances() []float64 {
	return append([]float64(nil), m.importances...)
}

// Depth returns the fitted tree depth (0 for a stump/leaf).
func (m *Tree) Depth() int {
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		if n == nil || n.leaf {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		return 1 + int(math.Max(float64(l), float64(r)))
	}
	return walk(m.root)
}

// LeafCount returns the number of leaves of the fitted tree.
func (m *Tree) LeafCount() int {
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		if n == nil {
			return 0
		}
		if n.leaf {
			return 1
		}
		return walk(n.left) + walk(n.right)
	}
	return walk(m.root)
}

// PerturbLeaves applies fn to every leaf probability; the differentially
// private decision tree uses this to add calibrated noise to leaf class
// fractions.
func (m *Tree) PerturbLeaves(fn func(proba float64) float64) {
	var walk func(n *treeNode)
	walk = func(n *treeNode) {
		if n == nil {
			return
		}
		if n.leaf {
			n.proba = clamp01(fn(n.proba))
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(m.root)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
