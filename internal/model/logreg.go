package model

import (
	"fmt"
	"math"

	"github.com/declarative-fs/dfs/internal/dataset"
)

// LogReg is l2-regularized binary logistic regression trained by full-batch
// gradient descent. Training is deterministic: no random initialization is
// needed because the regularized logistic loss is strictly convex.
type LogReg struct {
	// C is the inverse regularization strength (sklearn convention).
	C float64
	// Epochs bounds the number of gradient steps.
	Epochs int
	// LearningRate is the (constant) step size; features are expected in
	// [0, 1] so the default is stable.
	LearningRate float64

	w        []float64 // weights, one per feature
	b        float64   // intercept
	fitted   bool
	constant int // fallback label when training data has one class
	isConst  bool
}

// NewLogReg returns an untrained logistic regression with inverse
// regularization strength c.
func NewLogReg(c float64) *LogReg {
	return &LogReg{C: c, Epochs: 150, LearningRate: 0.7}
}

// Name implements Classifier.
func (m *LogReg) Name() string { return string(KindLR) }

// Clone implements Classifier.
func (m *LogReg) Clone() Classifier {
	return &LogReg{C: m.C, Epochs: m.Epochs, LearningRate: m.LearningRate}
}

// Fit implements Classifier.
func (m *LogReg) Fit(d *dataset.Dataset) error {
	n, p := d.Rows(), d.Features()
	if n == 0 {
		return fmt.Errorf("model: LR fit on empty dataset")
	}
	m.isConst = false
	zero, one := d.ClassCounts()
	if zero == 0 || one == 0 {
		m.isConst, m.constant = true, majorityLabel(d.Y)
		m.w, m.b, m.fitted = make([]float64, p), 0, true
		return nil
	}
	m.w = make([]float64, p)
	m.b = 0
	lambda := 0.0
	if m.C > 0 {
		lambda = 1 / (m.C * float64(n))
	}
	grad := make([]float64, p)
	for epoch := 0; epoch < m.Epochs; epoch++ {
		for j := range grad {
			grad[j] = 0
		}
		gb := 0.0
		for i := 0; i < n; i++ {
			row := d.X.Row(i)
			pHat := sigmoid(m.rawScore(row))
			err := pHat - float64(d.Y[i])
			for j, v := range row {
				grad[j] += err * v
			}
			gb += err
		}
		inv := 1 / float64(n)
		lr := m.LearningRate
		// Proximal step for the l2 term: unconditionally stable even for
		// very small C (large lambda).
		shrink := 1 / (1 + lr*lambda)
		for j := range m.w {
			m.w[j] = (m.w[j] - lr*grad[j]*inv) * shrink
		}
		m.b -= lr * gb * inv
	}
	m.fitted = true
	return nil
}

func (m *LogReg) rawScore(x []float64) float64 {
	s := m.b
	for j, v := range x {
		s += m.w[j] * v
	}
	return s
}

// Predict implements Classifier.
func (m *LogReg) Predict(x []float64) int {
	if m.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// PredictProba implements Classifier.
func (m *LogReg) PredictProba(x []float64) float64 {
	if !m.fitted {
		return 0.5
	}
	if m.isConst {
		return float64(m.constant)
	}
	return sigmoid(m.rawScore(x))
}

// FeatureImportances implements Importancer: the absolute coefficients.
func (m *LogReg) FeatureImportances() []float64 {
	out := make([]float64, len(m.w))
	for j, v := range m.w {
		out[j] = math.Abs(v)
	}
	return out
}

// Coefficients returns the fitted weight vector and intercept.
func (m *LogReg) Coefficients() (w []float64, b float64) {
	return append([]float64(nil), m.w...), m.b
}

// SetCoefficients overwrites the fitted parameters; the privacy package uses
// this to install noise-perturbed weights.
func (m *LogReg) SetCoefficients(w []float64, b float64) {
	m.w = append([]float64(nil), w...)
	m.b = b
	m.fitted = true
	m.isConst = false
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}
