package model

import (
	"fmt"
	"math"

	"github.com/declarative-fs/dfs/internal/dataset"
	"github.com/declarative-fs/dfs/internal/parallel"
)

// LogReg is l2-regularized binary logistic regression trained by full-batch
// gradient descent. Training is deterministic: no random initialization is
// needed because the regularized logistic loss is strictly convex, and the
// gradient is a fixed-chunk ordered reduction, so the fitted coefficients
// are bit-identical for every Workers setting.
type LogReg struct {
	// C is the inverse regularization strength (sklearn convention).
	C float64
	// Epochs bounds the number of gradient steps.
	Epochs int
	// LearningRate is the (constant) step size; features are expected in
	// [0, 1] so the default is stable.
	LearningRate float64
	// Workers bounds the goroutines of the per-epoch gradient pass;
	// <= 1 trains single-threaded. It never changes the fitted model.
	Workers int

	w        []float64 // weights, one per feature
	b        float64   // intercept
	fitted   bool
	constant int // fallback label when training data has one class
	isConst  bool
}

// NewLogReg returns an untrained logistic regression with inverse
// regularization strength c.
func NewLogReg(c float64) *LogReg {
	return &LogReg{C: c, Epochs: 150, LearningRate: 0.7}
}

// Name implements Classifier.
func (m *LogReg) Name() string { return string(KindLR) }

// Clone implements Classifier.
func (m *LogReg) Clone() Classifier {
	return &LogReg{C: m.C, Epochs: m.Epochs, LearningRate: m.LearningRate, Workers: m.Workers}
}

// Fit implements Classifier.
func (m *LogReg) Fit(d *dataset.Dataset) error {
	n, p := d.Rows(), d.Features()
	if n == 0 {
		return fmt.Errorf("model: LR fit on empty dataset")
	}
	m.isConst = false
	zero, one := d.ClassCounts()
	if zero == 0 || one == 0 {
		m.isConst, m.constant = true, majorityLabel(d.Y)
		m.w, m.b, m.fitted = make([]float64, p), 0, true
		return nil
	}
	m.w = make([]float64, p)
	m.b = 0
	lambda := 0.0
	if m.C > 0 {
		lambda = 1 / (m.C * float64(n))
	}
	// Per-epoch gradient as a deterministic chunked reduction: chunk
	// boundaries depend only on n, each chunk accumulates a private partial
	// (slot p holds the intercept gradient), and partials merge sequentially
	// in chunk order — bit-identical coefficients for any worker count.
	nc := parallel.NumChunks(n)
	stride := p + 1
	partials := make([]float64, nc*stride)
	grad := make([]float64, stride)
	w := m.w
	// One closure for all epochs (it would otherwise allocate per epoch);
	// b is re-snapshotted before each Run, which always returns before the
	// next epoch reads or writes it.
	b := m.b
	pass := func(c, lo, hi int) {
		part := partials[c*stride : (c+1)*stride]
		// Fused row pass: score and gradient contribution in one
		// traversal of the cache-hot row. The first row of the chunk
		// assigns instead of accumulating, which folds the per-epoch
		// gradient zeroing into the pass itself.
		for i := lo; i < hi; i++ {
			row := d.X.Row(i)
			s := b
			for j, v := range row {
				s += w[j] * v
			}
			err := sigmoid(s) - float64(d.Y[i])
			if i == lo {
				for j, v := range row {
					part[j] = err * v
				}
				part[p] = err
				continue
			}
			for j, v := range row {
				part[j] += err * v
			}
			part[p] += err
		}
	}
	workers := m.Workers
	if workers < 1 {
		workers = 1 // zero-value models train serially; the evaluator passes an explicit bound
	}
	for epoch := 0; epoch < m.Epochs; epoch++ {
		b = m.b
		parallel.Run(workers, n, pass)
		copy(grad, partials[:stride])
		for c := 1; c < nc; c++ {
			part := partials[c*stride : (c+1)*stride]
			for j, v := range part {
				grad[j] += v
			}
		}
		inv := 1 / float64(n)
		lr := m.LearningRate
		// Proximal step for the l2 term: unconditionally stable even for
		// very small C (large lambda).
		shrink := 1 / (1 + lr*lambda)
		for j := range w {
			w[j] = (w[j] - lr*grad[j]*inv) * shrink
		}
		m.b -= lr * grad[p] * inv
	}
	m.fitted = true
	return nil
}

func (m *LogReg) rawScore(x []float64) float64 {
	s := m.b
	for j, v := range x {
		s += m.w[j] * v
	}
	return s
}

// Predict implements Classifier.
func (m *LogReg) Predict(x []float64) int {
	if m.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// PredictProba implements Classifier.
func (m *LogReg) PredictProba(x []float64) float64 {
	if !m.fitted {
		return 0.5
	}
	if m.isConst {
		return float64(m.constant)
	}
	return sigmoid(m.rawScore(x))
}

// FeatureImportances implements Importancer: the absolute coefficients.
func (m *LogReg) FeatureImportances() []float64 {
	out := make([]float64, len(m.w))
	for j, v := range m.w {
		out[j] = math.Abs(v)
	}
	return out
}

// Coefficients returns the fitted weight vector and intercept.
func (m *LogReg) Coefficients() (w []float64, b float64) {
	return append([]float64(nil), m.w...), m.b
}

// SetCoefficients overwrites the fitted parameters; the privacy package uses
// this to install noise-perturbed weights.
func (m *LogReg) SetCoefficients(w []float64, b float64) {
	m.w = append([]float64(nil), w...)
	m.b = b
	m.fitted = true
	m.isConst = false
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}
