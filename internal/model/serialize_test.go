package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestForestRoundTrip(t *testing.T) {
	d := xorData(200, 9)
	f := NewForest(12, 7)
	if err := f.Fit(d); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteForest(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Identical predictions on every training point.
	for i := 0; i < d.Rows(); i++ {
		row := d.X.Row(i)
		if f.PredictProba(row) != got.PredictProba(row) {
			t.Fatalf("prediction differs after roundtrip at row %d", i)
		}
	}
	// Hyperparameters survive.
	if got.Seed != f.Seed || got.Balanced != f.Balanced {
		t.Fatal("metadata lost in roundtrip")
	}
}

func TestWriteForestRejectsUnfitted(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteForest(&buf, NewForest(3, 1)); err == nil {
		t.Fatal("unfitted forest serialized")
	}
}

func TestReadForestRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not json",
		`{"version":99,"trees":[]}`,
		`{"version":1,"trees":[]}`,
		`{"version":1,"trees":[{"nodes":[],"n_features":2}]}`,
		// Leaf with children.
		`{"version":1,"trees":[{"nodes":[{"f":0,"t":0,"l":1,"r":1,"p":0.5,"leaf":true}],"n_features":1}]}`,
		// Child index out of range.
		`{"version":1,"trees":[{"nodes":[{"f":0,"t":0.5,"l":5,"r":6,"p":0,"leaf":false}],"n_features":1}]}`,
		// Back-edge (cycle).
		`{"version":1,"trees":[{"nodes":[{"f":0,"t":0.5,"l":0,"r":0,"p":0,"leaf":false}],"n_features":1}]}`,
	}
	for i, c := range cases {
		if _, err := ReadForest(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
