package model

import (
	"fmt"
	"math"

	"github.com/declarative-fs/dfs/internal/dataset"
	"github.com/declarative-fs/dfs/internal/xrand"
)

// Forest is a random forest of CART trees: bootstrap sampling per tree and
// random feature subsampling (√p) per split. With Balanced set, samples are
// weighted inversely to their class frequency, matching the paper's choice
// of "a random forest classifier with default parameters and class
// balancing" for the DFS optimizer (§6.2).
type Forest struct {
	// Trees is the ensemble size; 0 means 100.
	Trees int
	// MaxDepth limits each tree; 0 means 10.
	MaxDepth int
	// Balanced enables inverse-class-frequency sample weights.
	Balanced bool
	// Seed drives bootstrap and feature subsampling.
	Seed uint64

	members []*Tree
	fitted  bool
}

// NewForest returns an untrained random forest.
func NewForest(trees int, seed uint64) *Forest {
	return &Forest{Trees: trees, Seed: seed, Balanced: true}
}

// Name implements Classifier.
func (m *Forest) Name() string { return "RF" }

// Clone implements Classifier.
func (m *Forest) Clone() Classifier {
	return &Forest{Trees: m.Trees, MaxDepth: m.MaxDepth, Balanced: m.Balanced, Seed: m.Seed}
}

// Fit implements Classifier.
func (m *Forest) Fit(d *dataset.Dataset) error {
	n, p := d.Rows(), d.Features()
	if n == 0 {
		return fmt.Errorf("model: RF fit on empty dataset")
	}
	trees := m.Trees
	if trees <= 0 {
		trees = 100
	}
	depth := m.MaxDepth
	if depth <= 0 {
		depth = 10
	}
	mtry := int(math.Sqrt(float64(p)))
	if mtry < 1 {
		mtry = 1
	}

	classWeight := [2]float64{1, 1}
	if m.Balanced {
		zero, one := d.ClassCounts()
		if zero > 0 && one > 0 {
			// sklearn "balanced": n / (2 * count_c).
			classWeight[0] = float64(n) / (2 * float64(zero))
			classWeight[1] = float64(n) / (2 * float64(one))
		}
	}

	rng := xrand.New(m.Seed)
	m.members = make([]*Tree, 0, trees)
	for t := 0; t < trees; t++ {
		treeRng := rng.Split()
		rows := make([]int, n)
		for i := range rows {
			rows[i] = treeRng.Intn(n)
		}
		boot := d.Subset(rows)
		w := make([]float64, boot.Rows())
		for i := range w {
			w[i] = classWeight[boot.Y[i]]
		}
		tr := &Tree{MaxDepth: depth, MinLeaf: 1, Mtry: mtry, Rng: treeRng}
		if err := tr.FitWeighted(boot, w); err != nil {
			return fmt.Errorf("model: RF member %d: %w", t, err)
		}
		m.members = append(m.members, tr)
	}
	m.fitted = true
	return nil
}

// Predict implements Classifier.
func (m *Forest) Predict(x []float64) int {
	if m.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// PredictProba implements Classifier: the mean of member leaf probabilities.
func (m *Forest) PredictProba(x []float64) float64 {
	if !m.fitted || len(m.members) == 0 {
		return 0.5
	}
	s := 0.0
	for _, tr := range m.members {
		s += tr.PredictProba(x)
	}
	return s / float64(len(m.members))
}

// FeatureImportances implements Importancer: the mean of member importances.
func (m *Forest) FeatureImportances() []float64 {
	if len(m.members) == 0 {
		return nil
	}
	out := make([]float64, len(m.members[0].importances))
	for _, tr := range m.members {
		for j, v := range tr.importances {
			out[j] += v
		}
	}
	for j := range out {
		out[j] /= float64(len(m.members))
	}
	return out
}
