// Package model implements the classifiers of the study from scratch:
// logistic regression, Gaussian naive Bayes, and a CART decision tree (the
// three models benchmarked as φ), a linear SVM (used by the feature-set
// transferability experiment, Table 7), and a random forest (the
// meta-learner of the DFS optimizer).
//
// All classifiers operate on model-ready datasets (features scaled to
// [0, 1], binary targets) and share a small interface so the DFS evaluator,
// the privacy wrappers, and the evasion attack can treat them uniformly.
package model

import (
	"fmt"

	"github.com/declarative-fs/dfs/internal/dataset"
	"github.com/declarative-fs/dfs/internal/linalg"
)

// Classifier is a trainable binary classifier.
type Classifier interface {
	// Name returns a short identifier such as "LR" or "DT".
	Name() string
	// Fit trains on the dataset, replacing any previous state.
	Fit(d *dataset.Dataset) error
	// Predict returns the predicted label (0 or 1) for one instance.
	Predict(x []float64) int
	// PredictProba returns P(y = 1 | x).
	PredictProba(x []float64) float64
	// Clone returns a fresh untrained classifier with identical
	// hyperparameters.
	Clone() Classifier
}

// Importancer is implemented by classifiers that expose intrinsic feature
// importance scores after fitting (LR coefficients, DT gini importance).
// Naive Bayes intentionally does not implement it: the paper notes that NB
// needs permutation importance for RFE, which is what internal/ranking
// provides as the fallback.
type Importancer interface {
	// FeatureImportances returns one non-negative score per feature of the
	// fitted model.
	FeatureImportances() []float64
}

// PredictBatch applies c to every row of x.
func PredictBatch(c Classifier, x *linalg.Matrix) []int {
	return PredictBatchInto(c, x, nil)
}

// PredictBatchInto applies c to every row of x, reusing buf's storage when it
// has enough capacity. The returned slice aliases buf in that case, so
// callers that keep predictions across calls must pass distinct buffers.
func PredictBatchInto(c Classifier, x *linalg.Matrix, buf []int) []int {
	var out []int
	if cap(buf) >= x.Rows {
		out = buf[:x.Rows]
	} else {
		out = make([]int, x.Rows)
	}
	for i := 0; i < x.Rows; i++ {
		out[i] = c.Predict(x.Row(i))
	}
	return out
}

// Kind enumerates the model families of the study.
type Kind string

const (
	// KindLR is l2-regularized logistic regression.
	KindLR Kind = "LR"
	// KindNB is Gaussian naive Bayes.
	KindNB Kind = "NB"
	// KindDT is a CART decision tree.
	KindDT Kind = "DT"
	// KindSVM is a linear support vector machine.
	KindSVM Kind = "SVM"
)

// Kinds lists the three classification models of the main benchmark.
var Kinds = []Kind{KindLR, KindNB, KindDT}

// Spec declares a model family together with its hyperparameters; the DFS
// evaluator instantiates a fresh classifier from the spec for every
// training run.
type Spec struct {
	Kind Kind

	// C is the inverse regularization strength of LR (sklearn convention);
	// also used as the SVM regularization trade-off. Zero means default (1).
	C float64
	// VarSmoothing is the NB variance floor fraction. Zero means 1e-9.
	VarSmoothing float64
	// MaxDepth is the DT depth limit. Zero means 4.
	MaxDepth int

	// Workers is a scheduling hint, not a hyperparameter: it caps the
	// data-parallel goroutines inside Fit for kernels that support it
	// (currently LR); <= 1 trains single-threaded. It never changes the
	// fitted model, so two specs differing only in Workers are equivalent.
	Workers int
}

// New instantiates an untrained classifier from the spec.
func New(s Spec) (Classifier, error) {
	switch s.Kind {
	case KindLR:
		c := s.C
		if c == 0 {
			c = 1
		}
		lr := NewLogReg(c)
		lr.Workers = s.Workers
		return lr, nil
	case KindNB:
		vs := s.VarSmoothing
		if vs == 0 {
			vs = 1e-9
		}
		return NewGaussianNB(vs), nil
	case KindDT:
		depth := s.MaxDepth
		if depth == 0 {
			depth = 4
		}
		return NewTree(depth), nil
	case KindSVM:
		c := s.C
		if c == 0 {
			c = 1
		}
		return NewLinearSVM(c), nil
	default:
		return nil, fmt.Errorf("model: unknown kind %q", s.Kind)
	}
}

// DefaultGrid returns the paper's HPO grid for the model kind (§6.1):
// LR C ∈ {10⁻², …, 10³}, NB var_smoothing ∈ [1e-12, 1e-6] (log grid),
// DT max depth ∈ [1, 7]. SVM reuses the LR grid on C.
func DefaultGrid(kind Kind) []Spec {
	switch kind {
	case KindLR, KindSVM:
		out := make([]Spec, 0, 6)
		c := 0.01
		for i := 0; i < 6; i++ {
			out = append(out, Spec{Kind: kind, C: c})
			c *= 10
		}
		return out
	case KindNB:
		out := make([]Spec, 0, 7)
		vs := 1e-12
		for i := 0; i < 7; i++ {
			out = append(out, Spec{Kind: kind, VarSmoothing: vs})
			vs *= 10
		}
		return out
	case KindDT:
		out := make([]Spec, 0, 7)
		for d := 1; d <= 7; d++ {
			out = append(out, Spec{Kind: kind, MaxDepth: d})
		}
		return out
	default:
		return nil
	}
}

// majorityLabel returns the most frequent label, defaulting to 0 on ties.
func majorityLabel(y []int) int {
	ones := 0
	for _, v := range y {
		ones += v
	}
	if 2*ones > len(y) {
		return 1
	}
	return 0
}
