package model

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/declarative-fs/dfs/internal/dataset"
	"github.com/declarative-fs/dfs/internal/linalg"
	"github.com/declarative-fs/dfs/internal/xrand"
)

// separable builds a linearly separable dataset: feature 0 determines the
// label, feature 1 is noise. Values are kept in [0, 1] like preprocessed
// data.
func separable(n int, seed uint64) *dataset.Dataset {
	rng := xrand.New(seed)
	x := linalg.NewMatrix(n, 2)
	y := make([]int, n)
	s := make([]int, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			x.Set(i, 0, rng.Uniform(0.7, 1.0))
			y[i] = 1
		} else {
			x.Set(i, 0, rng.Uniform(0.0, 0.3))
		}
		x.Set(i, 1, rng.Float64())
		s[i] = rng.Intn(2)
	}
	return &dataset.Dataset{Name: "sep", X: x, Y: y, Sensitive: s,
		FeatureNames: []string{"signal", "noise"}}
}

// xorData builds the XOR pattern that linear models cannot fit but trees can.
func xorData(n int, seed uint64) *dataset.Dataset {
	rng := xrand.New(seed)
	x := linalg.NewMatrix(n, 2)
	y := make([]int, n)
	s := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		if (a > 0.5) != (b > 0.5) {
			y[i] = 1
		}
	}
	return &dataset.Dataset{Name: "xor", X: x, Y: y, Sensitive: s,
		FeatureNames: []string{"a", "b"}}
}

func accuracy(c Classifier, d *dataset.Dataset) float64 {
	correct := 0
	for i := 0; i < d.Rows(); i++ {
		if c.Predict(d.X.Row(i)) == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Rows())
}

func allClassifiers() []Classifier {
	return []Classifier{
		NewLogReg(1),
		NewGaussianNB(1e-9),
		NewTree(4),
		NewLinearSVM(1),
		NewForest(25, 1),
	}
}

func TestAllModelsLearnSeparableData(t *testing.T) {
	train := separable(200, 1)
	test := separable(100, 2)
	for _, c := range allClassifiers() {
		if err := c.Fit(train); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if acc := accuracy(c, test); acc < 0.9 {
			t.Errorf("%s accuracy %v on separable data", c.Name(), acc)
		}
	}
}

func TestProbasAreProbabilities(t *testing.T) {
	train := separable(100, 3)
	for _, c := range allClassifiers() {
		if err := c.Fit(train); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < train.Rows(); i++ {
			p := c.PredictProba(train.X.Row(i))
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("%s proba %v out of range", c.Name(), p)
			}
			// Predict must be consistent with proba thresholding.
			want := 0
			if p >= 0.5 {
				want = 1
			}
			if c.Predict(train.X.Row(i)) != want {
				t.Fatalf("%s Predict inconsistent with PredictProba", c.Name())
			}
		}
	}
}

func TestUnfittedModelsReturnHalf(t *testing.T) {
	for _, c := range allClassifiers() {
		if p := c.PredictProba([]float64{0.5, 0.5}); p != 0.5 {
			t.Errorf("%s unfitted proba %v", c.Name(), p)
		}
	}
}

func TestSingleClassTraining(t *testing.T) {
	d := separable(50, 4)
	for i := range d.Y {
		d.Y[i] = 1
	}
	for _, c := range allClassifiers() {
		if err := c.Fit(d); err != nil {
			t.Fatalf("%s single-class fit: %v", c.Name(), err)
		}
		if got := c.Predict([]float64{0.1, 0.1}); got != 1 {
			t.Errorf("%s should predict the constant class, got %d", c.Name(), got)
		}
	}
}

func TestEmptyDatasetRejected(t *testing.T) {
	d := &dataset.Dataset{Name: "empty", X: linalg.NewMatrix(0, 2)}
	for _, c := range allClassifiers() {
		if err := c.Fit(d); err == nil {
			t.Errorf("%s accepted an empty dataset", c.Name())
		}
	}
}

func TestCloneIsUntrainedAndIndependent(t *testing.T) {
	train := separable(100, 5)
	for _, c := range allClassifiers() {
		if err := c.Fit(train); err != nil {
			t.Fatal(err)
		}
		clone := c.Clone()
		if p := clone.PredictProba([]float64{0.9, 0.5}); p != 0.5 {
			t.Errorf("%s clone is not untrained (proba %v)", c.Name(), p)
		}
		if clone.Name() != c.Name() {
			t.Errorf("clone changed name")
		}
	}
}

func TestTreeRespectsDepthLimit(t *testing.T) {
	d := xorData(400, 6)
	for _, depth := range []int{1, 2, 3, 5} {
		tr := NewTree(depth)
		if err := tr.Fit(d); err != nil {
			t.Fatal(err)
		}
		if got := tr.Depth(); got > depth {
			t.Fatalf("depth %d exceeds limit %d", got, depth)
		}
	}
}

func TestTreeSolvesXORButLinearModelsCannot(t *testing.T) {
	train, test := xorData(600, 7), xorData(200, 8)
	tr := NewTree(4)
	if err := tr.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(tr, test); acc < 0.85 {
		t.Fatalf("tree accuracy %v on XOR", acc)
	}
	lr := NewLogReg(1)
	if err := lr.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(lr, test); acc > 0.7 {
		t.Fatalf("LR accuracy %v on XOR is suspiciously high", acc)
	}
}

func TestTreeStumpAtDepthOne(t *testing.T) {
	d := separable(100, 9)
	tr := NewTree(1)
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 1 || tr.LeafCount() != 2 {
		t.Fatalf("stump has depth %d leaves %d", tr.Depth(), tr.LeafCount())
	}
}

func TestImportancesIdentifySignalFeature(t *testing.T) {
	d := separable(300, 10)
	for _, c := range []Classifier{NewLogReg(1), NewTree(3), NewLinearSVM(1), NewForest(25, 2)} {
		if err := c.Fit(d); err != nil {
			t.Fatal(err)
		}
		imp := c.(Importancer).FeatureImportances()
		if len(imp) != 2 {
			t.Fatalf("%s importance length %d", c.Name(), len(imp))
		}
		if imp[0] <= imp[1] {
			t.Errorf("%s importances %v do not favour the signal feature", c.Name(), imp)
		}
		for _, v := range imp {
			if v < 0 {
				t.Errorf("%s negative importance %v", c.Name(), v)
			}
		}
	}
}

func TestNBDoesNotExposeImportances(t *testing.T) {
	var c Classifier = NewGaussianNB(1e-9)
	if _, ok := c.(Importancer); ok {
		t.Fatal("NB should not implement Importancer (paper: permutation fallback)")
	}
}

func TestTreeImportancesSumToOne(t *testing.T) {
	d := xorData(300, 11)
	tr := NewTree(4)
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range tr.FeatureImportances() {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum %v", sum)
	}
}

func TestWeightedTreeShiftsDecision(t *testing.T) {
	// An imbalanced dataset: 90% negatives. With huge positive weights the
	// tree must flip towards predicting positives.
	rng := xrand.New(12)
	n := 200
	x := linalg.NewMatrix(n, 1)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.Float64())
		if i%10 == 0 {
			y[i] = 1
		}
	}
	d := &dataset.Dataset{Name: "imb", X: x, Y: y, Sensitive: make([]int, n)}
	w := make([]float64, n)
	for i := range w {
		if y[i] == 1 {
			w[i] = 100
		} else {
			w[i] = 1
		}
	}
	tr := NewTree(3)
	if err := tr.FitWeighted(d, w); err != nil {
		t.Fatal(err)
	}
	pos := 0
	for i := 0; i < n; i++ {
		pos += tr.Predict(x.Row(i))
	}
	if pos < n/2 {
		t.Fatalf("highly weighted positives ignored: %d/%d positive predictions", pos, n)
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	d := xorData(200, 13)
	a, b := NewForest(15, 99), NewForest(15, 99)
	if err := a.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Rows(); i++ {
		if a.PredictProba(d.X.Row(i)) != b.PredictProba(d.X.Row(i)) {
			t.Fatal("same-seed forests disagree")
		}
	}
}

func TestForestBalancedHelpsMinorityRecall(t *testing.T) {
	// Imbalanced separable data: balanced weighting should recall the
	// minority class.
	rng := xrand.New(14)
	n := 300
	x := linalg.NewMatrix(n, 1)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		if i%10 == 0 {
			y[i] = 1
			x.Set(i, 0, rng.Uniform(0.55, 1.0))
		} else {
			x.Set(i, 0, rng.Uniform(0.0, 0.6))
		}
	}
	d := &dataset.Dataset{Name: "imb", X: x, Y: y, Sensitive: make([]int, n)}
	f := NewForest(25, 3)
	if err := f.Fit(d); err != nil {
		t.Fatal(err)
	}
	tp, fn := 0, 0
	for i := 0; i < n; i++ {
		if y[i] == 1 {
			if f.Predict(x.Row(i)) == 1 {
				tp++
			} else {
				fn++
			}
		}
	}
	if recall := float64(tp) / float64(tp+fn); recall < 0.7 {
		t.Fatalf("balanced forest minority recall %v", recall)
	}
}

func TestSpecFactoryAndDefaults(t *testing.T) {
	for _, k := range []Kind{KindLR, KindNB, KindDT, KindSVM} {
		c, err := New(Spec{Kind: k})
		if err != nil {
			t.Fatal(err)
		}
		if c.Name() != string(k) {
			t.Fatalf("factory name %q != %q", c.Name(), k)
		}
	}
	if _, err := New(Spec{Kind: "bogus"}); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestDefaultGrids(t *testing.T) {
	if g := DefaultGrid(KindLR); len(g) != 6 || g[0].C != 0.01 || g[5].C != 1000 {
		t.Fatalf("LR grid wrong: %+v", g)
	}
	if g := DefaultGrid(KindNB); len(g) != 7 || g[0].VarSmoothing != 1e-12 {
		t.Fatalf("NB grid wrong: %+v", g)
	}
	if g := DefaultGrid(KindDT); len(g) != 7 || g[0].MaxDepth != 1 || g[6].MaxDepth != 7 {
		t.Fatalf("DT grid wrong: %+v", g)
	}
	if DefaultGrid("bogus") != nil {
		t.Fatal("bogus grid not nil")
	}
}

func TestLogRegCoefficientRoundTrip(t *testing.T) {
	lr := NewLogReg(1)
	if err := lr.Fit(separable(100, 15)); err != nil {
		t.Fatal(err)
	}
	w, b := lr.Coefficients()
	lr2 := NewLogReg(1)
	lr2.SetCoefficients(w, b)
	x := []float64{0.8, 0.2}
	if lr.PredictProba(x) != lr2.PredictProba(x) {
		t.Fatal("coefficient roundtrip changed predictions")
	}
}

func TestNBStatsRoundTrip(t *testing.T) {
	nb := NewGaussianNB(1e-9)
	if err := nb.Fit(separable(100, 16)); err != nil {
		t.Fatal(err)
	}
	mean, variance, prior := nb.Stats()
	nb2 := NewGaussianNB(1e-9)
	nb2.SetStats(mean, variance, prior)
	x := []float64{0.9, 0.5}
	if nb.PredictProba(x) != nb2.PredictProba(x) {
		t.Fatal("stats roundtrip changed predictions")
	}
}

func TestPerturbLeavesChangesProbas(t *testing.T) {
	tr := NewTree(3)
	if err := tr.Fit(separable(100, 17)); err != nil {
		t.Fatal(err)
	}
	tr.PerturbLeaves(func(p float64) float64 { return 1 - p })
	// The signal is inverted: accuracy should now be poor.
	if acc := accuracy(tr, separable(100, 18)); acc > 0.5 {
		t.Fatalf("inverted leaves still accurate: %v", acc)
	}
	// Clamping: perturbations outside [0,1] must clamp.
	tr.PerturbLeaves(func(p float64) float64 { return p + 10 })
	if p := tr.PredictProba([]float64{0.5, 0.5}); p != 1 {
		t.Fatalf("leaf proba %v not clamped", p)
	}
}

func TestPredictBatch(t *testing.T) {
	d := separable(50, 19)
	lr := NewLogReg(1)
	if err := lr.Fit(d); err != nil {
		t.Fatal(err)
	}
	batch := PredictBatch(lr, d.X)
	for i := range batch {
		if batch[i] != lr.Predict(d.X.Row(i)) {
			t.Fatal("batch prediction differs")
		}
	}
}

func TestLogRegDeterministic(t *testing.T) {
	d := separable(120, 20)
	a, b := NewLogReg(1), NewLogReg(1)
	if err := a.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(d); err != nil {
		t.Fatal(err)
	}
	wa, ba := a.Coefficients()
	wb, bb := b.Coefficients()
	if ba != bb {
		t.Fatal("intercepts differ")
	}
	for j := range wa {
		if wa[j] != wb[j] {
			t.Fatal("weights differ")
		}
	}
}

func TestRegularizationShrinksWeights(t *testing.T) {
	d := separable(150, 21)
	strong := NewLogReg(0.001)
	weak := NewLogReg(1000)
	if err := strong.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := weak.Fit(d); err != nil {
		t.Fatal(err)
	}
	ws, _ := strong.Coefficients()
	ww, _ := weak.Coefficients()
	if linalgNorm(ws) >= linalgNorm(ww) {
		t.Fatalf("strong regularization did not shrink weights: %v vs %v",
			linalgNorm(ws), linalgNorm(ww))
	}
}

func linalgNorm(w []float64) float64 {
	s := 0.0
	for _, v := range w {
		s += v * v
	}
	return math.Sqrt(s)
}

func TestPropertySigmoidRange(t *testing.T) {
	f := func(z float64) bool {
		if math.IsNaN(z) {
			return true
		}
		p := sigmoid(z)
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGiniBounds(t *testing.T) {
	f := func(a, b uint16) bool {
		g := gini(float64(a), float64(b))
		return g >= 0 && g <= 0.5+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTreeFit(b *testing.B) {
	d := xorData(300, 1)
	for i := 0; i < b.N; i++ {
		tr := NewTree(4)
		if err := tr.Fit(d); err != nil {
			b.Fatal(err)
		}
	}
}
