package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// The random forest is the only model that needs persistence (the DFS
// optimizer's meta-models are forests, and retraining them means re-running
// the scenario benchmark). The encoding is a stable JSON document: flattened
// node arrays per tree, so the format carries no Go-specific structure.

// forestDoc is the serialized random forest.
type forestDoc struct {
	Version  int       `json:"version"`
	Trees    []treeDoc `json:"trees"`
	Balanced bool      `json:"balanced"`
	Seed     uint64    `json:"seed"`
	MaxDepth int       `json:"max_depth"`
	NumTrees int       `json:"num_trees"`
}

// treeDoc is one serialized tree: nodes in pre-order, children by index.
type treeDoc struct {
	Nodes     []nodeDoc `json:"nodes"`
	NFeatures int       `json:"n_features"`
}

type nodeDoc struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t"`
	Left      int     `json:"l"` // node index; -1 for leaves
	Right     int     `json:"r"`
	Proba     float64 `json:"p"`
	Leaf      bool    `json:"leaf"`
}

const forestFormatVersion = 1

// WriteForest serializes a fitted forest.
func WriteForest(w io.Writer, f *Forest) error {
	if !f.fitted {
		return fmt.Errorf("model: cannot serialize an unfitted forest")
	}
	doc := forestDoc{
		Version:  forestFormatVersion,
		Balanced: f.Balanced,
		Seed:     f.Seed,
		MaxDepth: f.MaxDepth,
		NumTrees: f.Trees,
	}
	for _, tr := range f.members {
		doc.Trees = append(doc.Trees, flattenTree(tr))
	}
	return json.NewEncoder(w).Encode(doc)
}

// ReadForest deserializes a forest written by WriteForest.
func ReadForest(r io.Reader) (*Forest, error) {
	var doc forestDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("model: decoding forest: %w", err)
	}
	if doc.Version != forestFormatVersion {
		return nil, fmt.Errorf("model: unsupported forest format version %d", doc.Version)
	}
	f := &Forest{
		Balanced: doc.Balanced,
		Seed:     doc.Seed,
		MaxDepth: doc.MaxDepth,
		Trees:    doc.NumTrees,
		fitted:   true,
	}
	for i := range doc.Trees {
		tr, err := unflattenTree(&doc.Trees[i])
		if err != nil {
			return nil, fmt.Errorf("model: tree %d: %w", i, err)
		}
		f.members = append(f.members, tr)
	}
	if len(f.members) == 0 {
		return nil, fmt.Errorf("model: forest document has no trees")
	}
	return f, nil
}

// flattenTree lays the tree nodes out in pre-order.
func flattenTree(tr *Tree) treeDoc {
	doc := treeDoc{NFeatures: tr.nFeatures}
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		idx := len(doc.Nodes)
		doc.Nodes = append(doc.Nodes, nodeDoc{
			Feature: n.feature, Threshold: n.threshold,
			Proba: n.proba, Leaf: n.leaf, Left: -1, Right: -1,
		})
		if !n.leaf {
			doc.Nodes[idx].Left = walk(n.left)
			doc.Nodes[idx].Right = walk(n.right)
		}
		return idx
	}
	walk(tr.root)
	return doc
}

// unflattenTree rebuilds the linked structure and validates indices.
func unflattenTree(doc *treeDoc) (*Tree, error) {
	if len(doc.Nodes) == 0 {
		return nil, fmt.Errorf("empty node list")
	}
	nodes := make([]*treeNode, len(doc.Nodes))
	for i := range doc.Nodes {
		nd := &doc.Nodes[i]
		nodes[i] = &treeNode{
			feature: nd.Feature, threshold: nd.Threshold,
			proba: nd.Proba, leaf: nd.Leaf,
		}
	}
	for i := range doc.Nodes {
		nd := &doc.Nodes[i]
		if nd.Leaf {
			if nd.Left != -1 || nd.Right != -1 {
				return nil, fmt.Errorf("leaf node %d has children", i)
			}
			continue
		}
		if nd.Left <= i || nd.Left >= len(nodes) || nd.Right <= i || nd.Right >= len(nodes) {
			return nil, fmt.Errorf("node %d has invalid child indices (%d, %d)", i, nd.Left, nd.Right)
		}
		nodes[i].left = nodes[nd.Left]
		nodes[i].right = nodes[nd.Right]
	}
	tr := &Tree{nFeatures: doc.NFeatures, fitted: true}
	tr.root = nodes[0]
	tr.importances = make([]float64, doc.NFeatures)
	return tr, nil
}
