package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDemographicParityEqualRates(t *testing.T) {
	yPred := []int{1, 0, 1, 0}
	sens := []int{0, 0, 1, 1}
	if dp := DemographicParity(yPred, sens); dp != 1 {
		t.Fatalf("DP = %v, want 1", dp)
	}
}

func TestDemographicParityMaximalGap(t *testing.T) {
	yPred := []int{1, 1, 0, 0}
	sens := []int{0, 0, 1, 1}
	if dp := DemographicParity(yPred, sens); dp != 0 {
		t.Fatalf("DP = %v, want 0", dp)
	}
}

func TestDemographicParityVacuous(t *testing.T) {
	if dp := DemographicParity([]int{1, 0}, []int{0, 0}); dp != 1 {
		t.Fatalf("single-group DP = %v", dp)
	}
}

func TestEqualizedOddsPerfect(t *testing.T) {
	// Both groups: TPR 1, FPR 0.
	yTrue := []int{1, 0, 1, 0}
	yPred := []int{1, 0, 1, 0}
	sens := []int{0, 0, 1, 1}
	if eo := EqualizedOdds(yTrue, yPred, sens); eo != 1 {
		t.Fatalf("EOdds = %v", eo)
	}
}

func TestEqualizedOddsFPRGap(t *testing.T) {
	// TPRs equal (both 1), FPR majority 0 vs minority 1 → gap 1.
	yTrue := []int{1, 0, 1, 0}
	yPred := []int{1, 0, 1, 1}
	sens := []int{0, 0, 1, 1}
	if eo := EqualizedOdds(yTrue, yPred, sens); eo != 0 {
		t.Fatalf("EOdds = %v, want 0", eo)
	}
}

func TestEqualizedOddsStricterThanEO(t *testing.T) {
	// Same TPRs but different FPRs: EO sees fairness, equalized odds not.
	yTrue := []int{1, 1, 0, 0, 1, 1, 0, 0}
	yPred := []int{1, 0, 0, 0, 1, 0, 1, 1}
	sens := []int{0, 0, 0, 0, 1, 1, 1, 1}
	eo := EqualOpportunity(yTrue, yPred, sens)
	eodds := EqualizedOdds(yTrue, yPred, sens)
	if eo != 1 {
		t.Fatalf("EO = %v, want 1 (TPRs equal)", eo)
	}
	if eodds >= eo {
		t.Fatalf("equalized odds %v should be stricter than EO %v", eodds, eo)
	}
}

func TestGEIPerfectPredictionIsZero(t *testing.T) {
	y := []int{1, 0, 1, 0, 1}
	gei, err := GeneralizedEntropyIndex(y, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gei != 0 {
		t.Fatalf("GEI = %v, want 0 for uniform benefits", gei)
	}
}

func TestGEIIncreasesWithUnevenBenefits(t *testing.T) {
	yTrue := []int{1, 1, 0, 0}
	fair := []int{1, 1, 0, 0}   // benefits all 1
	uneven := []int{1, 0, 1, 0} // benefits 1, 0, 2, 1
	geiFair, err := GeneralizedEntropyIndex(yTrue, fair, 2)
	if err != nil {
		t.Fatal(err)
	}
	geiUneven, err := GeneralizedEntropyIndex(yTrue, uneven, 2)
	if err != nil {
		t.Fatal(err)
	}
	if geiUneven <= geiFair {
		t.Fatalf("uneven GEI %v should exceed fair GEI %v", geiUneven, geiFair)
	}
}

func TestGEITheilAndMLD(t *testing.T) {
	yTrue := []int{1, 1, 0, 0}
	yPred := []int{1, 0, 1, 0}
	for _, alpha := range []float64{0, 1, 2} {
		gei, err := GeneralizedEntropyIndex(yTrue, yPred, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if gei < 0 || math.IsNaN(gei) || math.IsInf(gei, 0) {
			t.Fatalf("GEI(alpha=%v) = %v", alpha, gei)
		}
	}
}

func TestGEIErrors(t *testing.T) {
	if _, err := GeneralizedEntropyIndex([]int{1}, []int{1, 0}, 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := GeneralizedEntropyIndex(nil, nil, 2); err == nil {
		t.Fatal("empty input accepted")
	}
	// All false negatives: mean benefit 0, defined as 0.
	gei, err := GeneralizedEntropyIndex([]int{1, 1}, []int{0, 0}, 2)
	if err != nil || gei != 0 {
		t.Fatalf("all-FN GEI = %v, %v", gei, err)
	}
}

func TestPropertyFairnessMetricBounds(t *testing.T) {
	f := func(raw [10]uint8) bool {
		yTrue := make([]int, len(raw))
		yPred := make([]int, len(raw))
		sens := make([]int, len(raw))
		for i, v := range raw {
			yTrue[i] = int(v) & 1
			yPred[i] = int(v>>1) & 1
			sens[i] = int(v>>2) & 1
		}
		dp := DemographicParity(yPred, sens)
		eo := EqualizedOdds(yTrue, yPred, sens)
		return dp >= 0 && dp <= 1 && eo >= 0 && eo <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGEINonNegativeAlpha2(t *testing.T) {
	f := func(raw [10]uint8) bool {
		yTrue := make([]int, len(raw))
		yPred := make([]int, len(raw))
		for i, v := range raw {
			yTrue[i] = int(v) & 1
			yPred[i] = int(v>>1) & 1
		}
		gei, err := GeneralizedEntropyIndex(yTrue, yPred, 2)
		return err == nil && gei >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
