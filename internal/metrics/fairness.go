package metrics

import (
	"fmt"
	"math"
)

// Beyond equal opportunity, the paper names the generalized entropy index
// (Speicher et al.) and observational discrimination ratios as fairness
// metrics with the same inputs (§3, "Min Fairness"). They are provided here
// so custom DFS flows can swap the fairness metric without touching the
// selection machinery; the benchmark itself uses EO, as the paper does.

// DemographicParity returns 1 − |P(ŷ=1 | minority) − P(ŷ=1 | majority)|:
// 1 means both groups receive positive predictions at the same rate.
// A group without members makes the metric vacuously 1.
func DemographicParity(yPred, sensitive []int) float64 {
	if len(yPred) != len(sensitive) {
		panic("metrics: DemographicParity length mismatch")
	}
	var pos, n [2]int
	for i, p := range yPred {
		g := sensitive[i]
		n[g]++
		if p == 1 {
			pos[g]++
		}
	}
	if n[0] == 0 || n[1] == 0 {
		return 1
	}
	r0 := float64(pos[0]) / float64(n[0])
	r1 := float64(pos[1]) / float64(n[1])
	return 1 - math.Abs(r1-r0)
}

// EqualizedOdds returns 1 − max(|ΔTPR|, |ΔFPR|) between the groups (Hardt
// et al.'s stricter criterion: both error rates must match). Groups missing
// positives (or negatives) contribute no TPR (or FPR) evidence.
func EqualizedOdds(yTrue, yPred, sensitive []int) float64 {
	if len(yTrue) != len(yPred) || len(yTrue) != len(sensitive) {
		panic("metrics: EqualizedOdds length mismatch")
	}
	var tp, pos, fp, neg [2]int
	for i, y := range yTrue {
		g := sensitive[i]
		if y == 1 {
			pos[g]++
			if yPred[i] == 1 {
				tp[g]++
			}
		} else {
			neg[g]++
			if yPred[i] == 1 {
				fp[g]++
			}
		}
	}
	gap := 0.0
	if pos[0] > 0 && pos[1] > 0 {
		dTPR := math.Abs(float64(tp[1])/float64(pos[1]) - float64(tp[0])/float64(pos[0]))
		gap = math.Max(gap, dTPR)
	}
	if neg[0] > 0 && neg[1] > 0 {
		dFPR := math.Abs(float64(fp[1])/float64(neg[1]) - float64(fp[0])/float64(neg[0]))
		gap = math.Max(gap, dFPR)
	}
	return 1 - gap
}

// GeneralizedEntropyIndex computes the GE(α) unfairness index of Speicher
// et al. over per-instance benefits b_i = ŷ_i − y_i + 1 (0 for a false
// negative, 1 for a correct prediction, 2 for a false positive). Zero means
// perfectly uniform benefit; larger values mean more individual unfairness.
// alpha = 2 is the common choice (half the squared coefficient of
// variation).
func GeneralizedEntropyIndex(yTrue, yPred []int, alpha float64) (float64, error) {
	if len(yTrue) != len(yPred) {
		return 0, fmt.Errorf("metrics: GEI length mismatch %d != %d", len(yTrue), len(yPred))
	}
	if len(yTrue) == 0 {
		return 0, fmt.Errorf("metrics: GEI on empty input")
	}
	n := float64(len(yTrue))
	benefits := make([]float64, len(yTrue))
	mean := 0.0
	for i := range yTrue {
		benefits[i] = float64(yPred[i]-yTrue[i]) + 1
		mean += benefits[i]
	}
	mean /= n
	if mean == 0 {
		// Every instance is a false negative: define the index as 0 (all
		// benefits equal).
		return 0, nil
	}
	switch alpha {
	case 1: // Theil index
		sum := 0.0
		for _, b := range benefits {
			r := b / mean
			if r > 0 {
				sum += r * math.Log(r)
			}
		}
		return sum / n, nil
	case 0: // mean log deviation; undefined for zero benefits, floor them
		sum := 0.0
		for _, b := range benefits {
			r := b / mean
			if r <= 0 {
				r = 1e-12
			}
			sum -= math.Log(r)
		}
		return sum / n, nil
	default:
		sum := 0.0
		for _, b := range benefits {
			sum += math.Pow(b/mean, alpha) - 1
		}
		return sum / (n * alpha * (alpha - 1)), nil
	}
}
