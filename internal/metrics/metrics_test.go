package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusionCounts(t *testing.T) {
	c := NewConfusion(
		[]int{1, 1, 0, 0, 1, 0},
		[]int{1, 0, 1, 0, 1, 0},
	)
	if c.TP != 2 || c.FN != 1 || c.FP != 1 || c.TN != 2 {
		t.Fatalf("confusion %+v", c)
	}
}

func TestPerfectPrediction(t *testing.T) {
	y := []int{1, 0, 1, 0}
	c := NewConfusion(y, y)
	if c.Accuracy() != 1 || c.F1() != 1 || c.Precision() != 1 || c.Recall() != 1 {
		t.Fatal("perfect prediction should score 1 everywhere")
	}
}

func TestAllWrongPrediction(t *testing.T) {
	c := NewConfusion([]int{1, 0}, []int{0, 1})
	if c.Accuracy() != 0 || c.F1() != 0 {
		t.Fatal("all-wrong prediction should score 0")
	}
}

func TestF1KnownValue(t *testing.T) {
	// precision = 2/3, recall = 2/4 → F1 = 2·(2/3·1/2)/(2/3+1/2) = 4/7.
	c := Confusion{TP: 2, FP: 1, FN: 2}
	if math.Abs(c.F1()-4.0/7.0) > 1e-12 {
		t.Fatalf("F1 = %v", c.F1())
	}
}

func TestDegenerateScoresAreZeroNotNaN(t *testing.T) {
	c := Confusion{}
	for _, v := range []float64{c.Accuracy(), c.Precision(), c.Recall(), c.F1()} {
		if math.IsNaN(v) || v != 0 {
			t.Fatalf("degenerate metric %v", v)
		}
	}
	// No predicted positives.
	c = NewConfusion([]int{1, 1}, []int{0, 0})
	if c.F1() != 0 {
		t.Fatal("no-positive prediction F1 should be 0")
	}
}

func TestConfusionPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	NewConfusion([]int{1}, []int{1, 0})
}

func TestEqualOpportunityFair(t *testing.T) {
	// Both groups have TPR 1/2.
	yTrue := []int{1, 1, 1, 1}
	yPred := []int{1, 0, 1, 0}
	sens := []int{0, 0, 1, 1}
	if eo := EqualOpportunity(yTrue, yPred, sens); eo != 1 {
		t.Fatalf("EO = %v, want 1", eo)
	}
}

func TestEqualOpportunityMaximallyUnfair(t *testing.T) {
	// Majority TPR 1, minority TPR 0.
	yTrue := []int{1, 1}
	yPred := []int{1, 0}
	sens := []int{0, 1}
	if eo := EqualOpportunity(yTrue, yPred, sens); eo != 0 {
		t.Fatalf("EO = %v, want 0", eo)
	}
}

func TestEqualOpportunityPartialGap(t *testing.T) {
	// Majority TPR = 1.0 (2/2), minority TPR = 0.5 (1/2) → EO = 0.5.
	yTrue := []int{1, 1, 1, 1, 0}
	yPred := []int{1, 1, 1, 0, 1}
	sens := []int{0, 0, 1, 1, 1}
	if eo := EqualOpportunity(yTrue, yPred, sens); math.Abs(eo-0.5) > 1e-12 {
		t.Fatalf("EO = %v, want 0.5", eo)
	}
}

func TestEqualOpportunityVacuous(t *testing.T) {
	// Minority group has no positives → vacuously fair.
	yTrue := []int{1, 0}
	yPred := []int{0, 0}
	sens := []int{0, 1}
	if eo := EqualOpportunity(yTrue, yPred, sens); eo != 1 {
		t.Fatalf("EO = %v, want vacuous 1", eo)
	}
}

func TestEqualOpportunityIgnoresNegatives(t *testing.T) {
	// Changing predictions on negative instances must not change EO.
	yTrue := []int{1, 1, 0, 0}
	sens := []int{0, 1, 0, 1}
	a := EqualOpportunity(yTrue, []int{1, 1, 0, 0}, sens)
	b := EqualOpportunity(yTrue, []int{1, 1, 1, 1}, sens)
	if a != b {
		t.Fatal("EO depends on negative-instance predictions")
	}
}

func TestSafetyScores(t *testing.T) {
	if s := Safety(0.9, 0.9); s != 1 {
		t.Fatalf("no-drop safety %v", s)
	}
	if s := Safety(0.9, 0.4); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("safety %v, want 0.5", s)
	}
	// An attack that somehow improves F1 clamps to 1.
	if s := Safety(0.5, 0.9); s != 1 {
		t.Fatalf("improving attack safety %v", s)
	}
	if s := Safety(1, -1); s != 0 {
		t.Fatalf("clamped floor %v", s)
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 || std != 2 {
		t.Fatalf("mean %v std %v", mean, std)
	}
	mean, std = MeanStd(nil)
	if mean != 0 || std != 0 {
		t.Fatal("empty MeanStd should be 0,0")
	}
}

func TestPropertyF1Bounds(t *testing.T) {
	f := func(raw [12]uint8) bool {
		yTrue := make([]int, len(raw))
		yPred := make([]int, len(raw))
		for i, v := range raw {
			yTrue[i] = int(v) & 1
			yPred[i] = int(v>>1) & 1
		}
		v := F1Score(yTrue, yPred)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEOBounds(t *testing.T) {
	f := func(raw [12]uint8) bool {
		yTrue := make([]int, len(raw))
		yPred := make([]int, len(raw))
		sens := make([]int, len(raw))
		for i, v := range raw {
			yTrue[i] = int(v) & 1
			yPred[i] = int(v>>1) & 1
			sens[i] = int(v>>2) & 1
		}
		eo := EqualOpportunity(yTrue, yPred, sens)
		return eo >= 0 && eo <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAccuracySymmetricUnderLabelSwap(t *testing.T) {
	f := func(raw [10]uint8) bool {
		yTrue := make([]int, len(raw))
		yPred := make([]int, len(raw))
		flipT := make([]int, len(raw))
		flipP := make([]int, len(raw))
		for i, v := range raw {
			yTrue[i] = int(v) & 1
			yPred[i] = int(v>>1) & 1
			flipT[i] = 1 - yTrue[i]
			flipP[i] = 1 - yPred[i]
		}
		return Accuracy(yTrue, yPred) == Accuracy(flipT, flipP)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
