// Package metrics implements the evaluation metrics behind the paper's ML
// application constraints (§3): the F1 score used for Min Accuracy, equal
// opportunity for Min Fairness, the empirical robustness score for Min
// Safety, plus the aggregation helpers used by the experiment tables
// (mean ± standard deviation, normalized F1).
package metrics

import (
	"fmt"
	"math"
)

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// NewConfusion tallies a confusion matrix; it panics on length mismatch.
func NewConfusion(yTrue, yPred []int) Confusion {
	if len(yTrue) != len(yPred) {
		panic(fmt.Sprintf("metrics: confusion length mismatch %d != %d", len(yTrue), len(yPred)))
	}
	var c Confusion
	for i, y := range yTrue {
		switch {
		case y == 1 && yPred[i] == 1:
			c.TP++
		case y == 1:
			c.FN++
		case yPred[i] == 1:
			c.FP++
		default:
			c.TN++
		}
	}
	return c
}

// Accuracy returns the fraction of correct predictions.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Precision returns TP/(TP+FP), or 0 when no positives were predicted.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when no positive instances exist.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall. The paper uses F1 as
// the accuracy metric because it is robust against class imbalance.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// F1Score is a convenience wrapper over NewConfusion(...).F1().
func F1Score(yTrue, yPred []int) float64 {
	return NewConfusion(yTrue, yPred).F1()
}

// Accuracy is a convenience wrapper over NewConfusion(...).Accuracy().
func Accuracy(yTrue, yPred []int) float64 {
	return NewConfusion(yTrue, yPred).Accuracy()
}

// EqualOpportunity computes EO = 1 − |TPR_minority − TPR_majority| (Hardt et
// al.), where sensitive[i] == 1 marks minority-group membership. A group
// without positive instances contributes no evidence of discrimination: if
// either group has no positives, the metric is vacuously 1.
func EqualOpportunity(yTrue, yPred, sensitive []int) float64 {
	if len(yTrue) != len(yPred) || len(yTrue) != len(sensitive) {
		panic("metrics: EqualOpportunity length mismatch")
	}
	var tp, pos [2]int
	for i, y := range yTrue {
		if y != 1 {
			continue
		}
		g := sensitive[i]
		pos[g]++
		if yPred[i] == 1 {
			tp[g]++
		}
	}
	if pos[0] == 0 || pos[1] == 0 {
		return 1
	}
	tprMaj := float64(tp[0]) / float64(pos[0])
	tprMin := float64(tp[1]) / float64(pos[1])
	return 1 - math.Abs(tprMin-tprMaj)
}

// Safety converts the accuracy drop under an evasion attack into the paper's
// empirical robustness score: 1 − (F1_original − F1_attacked), clamped to
// [0, 1]. A model whose F1 is unchanged by the attack has safety 1.
func Safety(f1Original, f1Attacked float64) float64 {
	s := 1 - (f1Original - f1Attacked)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// MeanStd returns the mean and (population) standard deviation of vals.
func MeanStd(vals []float64) (mean, std float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	for _, v := range vals {
		d := v - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(vals)))
	return mean, std
}
