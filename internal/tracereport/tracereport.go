// Package tracereport reads the JSONL span traces emitted by internal/obs —
// including size-rotated file sets and multi-epoch traces from restarted
// daemons — reconstructs the span trees (job → pool → scenario →
// strategy_run), and derives the operator-facing report behind
// cmd/obsreport: per-scenario critical paths, slowest strategy runs, memo
// hit-rate breakdown, per-tenant job latency quantiles, and a cross-check of
// span counts against a /metrics snapshot.
package tracereport

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/declarative-fs/dfs/internal/obs"
)

// Event is one point-in-time record, either bound to a span or (span 0) a
// trace-level annotation such as the epoch marker.
type Event struct {
	Epoch int
	Name  string
	TS    int64
	Attrs map[string]any
}

// Span is one reconstructed span. Start/End are nanoseconds on the emitting
// tracer's monotonic clock; End is -1 while the span is open (a crash, or a
// trace scraped mid-run).
type Span struct {
	Epoch      int
	ID         uint64
	Name       string
	Start      int64
	End        int64
	StartAttrs map[string]any
	EndAttrs   map[string]any
	Parent     *Span
	Children   []*Span
	Events     []Event
}

// Ended reports whether the span's end record was seen.
func (s *Span) Ended() bool { return s.End >= 0 }

// Duration is the span's wall time (0 while open).
func (s *Span) Duration() time.Duration {
	if !s.Ended() {
		return 0
	}
	return time.Duration(s.End - s.Start)
}

// Attr returns an attribute, preferring the end record over the start.
func (s *Span) Attr(key string) any {
	if v, ok := s.EndAttrs[key]; ok {
		return v
	}
	if v, ok := s.StartAttrs[key]; ok {
		return v
	}
	return nil
}

// Str returns a string attribute ("" when absent or not a string).
func (s *Span) Str(key string) string {
	v, _ := s.Attr(key).(string)
	return v
}

// Status is the conventional "status" end attribute.
func (s *Span) Status() string { return s.Str("status") }

// Complete reports whether the span and its entire subtree ended.
func (s *Span) Complete() bool {
	if !s.Ended() {
		return false
	}
	for _, c := range s.Children {
		if !c.Complete() {
			return false
		}
	}
	return true
}

// Trace is the decoded content of one or more trace files.
type Trace struct {
	Files []string
	// Epochs counts distinct tracer lifetimes seen: a new epoch starts at
	// each obs.EpochEvent marker, or implicitly when a span ID restarts
	// (every tracer numbers from 1, so a reused ID means a new process
	// appended to the same rotated set).
	Epochs int
	Spans  []*Span // in start order
	Roots  []*Span // spans with no (retained) parent
	// TraceEvents are span-0 annotations (epoch markers etc.).
	TraceEvents []Event
	// EventCount is the total number of event records, span-bound included.
	EventCount int
	// MalformedLines counts undecodable lines (e.g. a torn tail after
	// kill -9); DanglingRecords counts ends/events whose span was never
	// started in the retained files (rotation dropped the head).
	MalformedLines  int
	DanglingRecords int
}

// LastEpoch is the index of the newest epoch (-1 on an empty trace).
func (t *Trace) LastEpoch() int { return t.Epochs - 1 }

// ByName returns all spans with the given name, in start order.
func (t *Trace) ByName(name string) []*Span {
	var out []*Span
	for _, s := range t.Spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Load reads trace files in the order given (oldest first — the order
// obs.RotatedFiles returns) and reconstructs the span trees.
func Load(files ...string) (*Trace, error) {
	st := &loadState{
		trace: &Trace{Files: files},
		open:  make(map[uint64]*Span),
		seen:  make(map[uint64]bool),
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("tracereport: %w", err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
		for sc.Scan() {
			st.line(sc.Bytes())
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("tracereport: read %s: %w", path, err)
		}
	}
	if st.any {
		st.trace.Epochs = st.epoch + 1
	}
	return st.trace, nil
}

type loadState struct {
	trace *Trace
	open  map[uint64]*Span // started, not yet ended, current epoch
	seen  map[uint64]bool  // every ID started in the current epoch
	epoch int
	any   bool // any record decoded at all
	body  bool // any non-marker record decoded in the current epoch
}

func (st *loadState) bumpEpoch() {
	st.epoch++
	st.open = make(map[uint64]*Span)
	st.seen = make(map[uint64]bool)
	st.body = false
}

// recordFields are the reserved keys of a trace record; everything else on
// the line is an attribute.
var recordFields = map[string]bool{"t": true, "id": true, "span": true, "parent": true, "name": true, "ts": true}

func attrsOf(m map[string]any) map[string]any {
	attrs := make(map[string]any, len(m))
	for k, v := range m {
		if !recordFields[k] {
			attrs[k] = v
		}
	}
	return attrs
}

func u64(v any) uint64 {
	f, _ := v.(float64)
	if f < 0 {
		return 0
	}
	return uint64(f)
}

func i64(v any) int64 {
	f, _ := v.(float64)
	return int64(f)
}

func (st *loadState) line(data []byte) {
	if len(data) == 0 {
		return
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		st.trace.MalformedLines++
		return
	}
	typ, _ := m["t"].(string)
	switch typ {
	case "start":
		st.any = true
		id := u64(m["id"])
		if id == 0 {
			st.trace.MalformedLines++
			return
		}
		if st.seen[id] {
			// A tracer numbers spans from 1: a repeated ID means a new
			// process appended to this file set without an epoch marker.
			st.bumpEpoch()
		}
		st.body = true
		name, _ := m["name"].(string)
		sp := &Span{
			Epoch:      st.epoch,
			ID:         id,
			Name:       name,
			Start:      i64(m["ts"]),
			End:        -1,
			StartAttrs: attrsOf(m),
		}
		if pid := u64(m["parent"]); pid != 0 {
			if p := st.open[pid]; p != nil {
				sp.Parent = p
				p.Children = append(p.Children, sp)
			} else {
				st.trace.DanglingRecords++
			}
		}
		if sp.Parent == nil {
			st.trace.Roots = append(st.trace.Roots, sp)
		}
		st.open[id] = sp
		st.seen[id] = true
		st.trace.Spans = append(st.trace.Spans, sp)
	case "end":
		st.any = true
		st.body = true
		sp := st.open[u64(m["id"])]
		if sp == nil {
			st.trace.DanglingRecords++
			return
		}
		sp.End = i64(m["ts"])
		sp.EndAttrs = attrsOf(m)
		delete(st.open, sp.ID)
	case "event":
		st.any = true
		st.trace.EventCount++
		name, _ := m["name"].(string)
		span := u64(m["span"])
		if span == 0 {
			if name == obs.EpochEvent && st.body {
				st.bumpEpoch()
			}
			st.trace.TraceEvents = append(st.trace.TraceEvents, Event{
				Epoch: st.epoch, Name: name, TS: i64(m["ts"]), Attrs: attrsOf(m),
			})
			return
		}
		st.body = true
		sp := st.open[span]
		if sp == nil {
			st.trace.DanglingRecords++
			return
		}
		sp.Events = append(sp.Events, Event{
			Epoch: sp.Epoch, Name: name, TS: i64(m["ts"]), Attrs: attrsOf(m),
		})
	default:
		st.trace.MalformedLines++
	}
}
