package tracereport

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"github.com/declarative-fs/dfs/internal/obs"
)

// Options tune Build.
type Options struct {
	// TopN bounds the slowest-runs and critical-path listings (default 10).
	TopN int
	// Metrics, when non-nil, is a /metrics JSON snapshot scraped from the
	// same process that wrote the trace's last epoch; Build cross-checks
	// span and event counts against its counters.
	Metrics *obs.Snapshot
}

// JobSummary is one serve job span.
type JobSummary struct {
	ID         string  `json:"id"`
	Tenant     string  `json:"tenant,omitempty"`
	Epoch      int     `json:"epoch"`
	Status     string  `json:"status"`
	QueueWaitS float64 `json:"queue_wait_s"`
	RunS       float64 `json:"run_s"`
	E2ES       float64 `json:"e2e_s"`
	Complete   bool    `json:"complete"`
}

// TenantLatency is the exact end-to-end latency distribution of one
// tenant's completed jobs.
type TenantLatency struct {
	Tenant string  `json:"tenant"`
	Jobs   int     `json:"jobs"`
	P50S   float64 `json:"p50_s"`
	P95S   float64 `json:"p95_s"`
	P99S   float64 `json:"p99_s"`
}

// ScenarioCritical is one scenario with its critical path: the slowest
// strategy run and the fraction of the scenario it accounts for.
type ScenarioCritical struct {
	Dataset   string  `json:"dataset"`
	Scenario  int64   `json:"scenario"`
	Seconds   float64 `json:"seconds"`
	Critical  string  `json:"critical_strategy"`
	CriticalS float64 `json:"critical_s"`
	Fraction  float64 `json:"fraction"`
}

// RunSummary is one strategy run.
type RunSummary struct {
	Strategy string  `json:"strategy"`
	Dataset  string  `json:"dataset,omitempty"`
	Status   string  `json:"status"`
	Seconds  float64 `json:"seconds"`
}

// MemoBreakdown aggregates the per-evaluation memo outcome events.
type MemoBreakdown struct {
	EvalEvents int64   `json:"eval_events"`
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	Off        int64   `json:"off"`
	HitRate    float64 `json:"hit_rate"`
}

// SLOQuantiles is the bucket-interpolated latency summary of one metrics
// histogram (present only when a metrics snapshot was supplied).
type SLOQuantiles struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Report is the analysis of a trace file set.
type Report struct {
	Files           []string           `json:"files"`
	Epochs          int                `json:"epochs"`
	Spans           int                `json:"spans"`
	Events          int                `json:"events"`
	MalformedLines  int                `json:"malformed_lines,omitempty"`
	DanglingRecords int                `json:"dangling_records,omitempty"`
	Jobs            []JobSummary       `json:"jobs,omitempty"`
	Tenants         []TenantLatency    `json:"tenant_latency,omitempty"`
	Scenarios       []ScenarioCritical `json:"scenario_critical_paths,omitempty"`
	SlowestRuns     []RunSummary       `json:"slowest_strategy_runs,omitempty"`
	Memo            MemoBreakdown      `json:"memo"`
	SLOs            []SLOQuantiles     `json:"slo_histograms,omitempty"`
	// Notes are non-fatal observations (e.g. cross-check skipped because
	// rotation dropped the head of the epoch).
	Notes []string `json:"notes,omitempty"`
	// Violations are invariant failures: incomplete span trees in the last
	// epoch, duplicate job spans, or span counts disagreeing with counters.
	Violations []string `json:"violations,omitempty"`
}

const secondsPerNano = 1e-9

// Build derives the report from a loaded trace.
func Build(t *Trace, opts Options) *Report {
	topN := opts.TopN
	if topN <= 0 {
		topN = 10
	}
	r := &Report{
		Files:           t.Files,
		Epochs:          t.Epochs,
		Spans:           len(t.Spans),
		Events:          t.EventCount,
		MalformedLines:  t.MalformedLines,
		DanglingRecords: t.DanglingRecords,
	}
	last := t.LastEpoch()

	// Jobs, per-tenant latency.
	type epochJob struct {
		epoch int
		id    string
	}
	jobsPerEpochID := make(map[epochJob]int)
	tenantE2E := make(map[string][]float64)
	for _, s := range t.ByName("job") {
		js := JobSummary{
			ID:       s.Str("job"),
			Tenant:   s.Str("tenant"),
			Epoch:    s.Epoch,
			Status:   s.Status(),
			E2ES:     s.Duration().Seconds(),
			Complete: s.Complete(),
		}
		for _, ev := range s.Events {
			if ev.Name == "dequeue" {
				if w, ok := ev.Attrs["queue_wait_seconds"].(float64); ok {
					js.QueueWaitS = w
				}
				if s.Ended() {
					js.RunS = float64(s.End-ev.TS) * secondsPerNano
				}
			}
		}
		r.Jobs = append(r.Jobs, js)
		jobsPerEpochID[epochJob{s.Epoch, js.ID}]++
		if js.Complete && js.Status == "done" {
			tenant := js.Tenant
			if tenant == "" {
				tenant = "(none)"
			}
			tenantE2E[tenant] = append(tenantE2E[tenant], js.E2ES)
		}
	}
	for key, n := range jobsPerEpochID {
		if n > 1 {
			r.Violations = append(r.Violations,
				fmt.Sprintf("job %s has %d span trees in epoch %d (want exactly 1)", key.id, n, key.epoch))
		}
	}
	for tenant, lats := range tenantE2E {
		sort.Float64s(lats)
		r.Tenants = append(r.Tenants, TenantLatency{
			Tenant: tenant,
			Jobs:   len(lats),
			P50S:   exactQuantile(lats, 0.50),
			P95S:   exactQuantile(lats, 0.95),
			P99S:   exactQuantile(lats, 0.99),
		})
	}
	sort.Slice(r.Tenants, func(i, j int) bool { return r.Tenants[i].Tenant < r.Tenants[j].Tenant })

	// Scenario critical paths.
	for _, s := range t.ByName("scenario") {
		if !s.Ended() {
			continue
		}
		sc := ScenarioCritical{
			Dataset: s.Str("dataset"),
			Seconds: s.Duration().Seconds(),
		}
		if id, ok := s.Attr("scenario_id").(float64); ok {
			sc.Scenario = int64(id)
		}
		for _, c := range s.Children {
			if c.Name != "strategy_run" || !c.Ended() {
				continue
			}
			if d := c.Duration().Seconds(); d > sc.CriticalS {
				sc.CriticalS = d
				sc.Critical = c.Str("strategy")
			}
		}
		if sc.Seconds > 0 {
			sc.Fraction = sc.CriticalS / sc.Seconds
		}
		r.Scenarios = append(r.Scenarios, sc)
	}
	sort.Slice(r.Scenarios, func(i, j int) bool { return r.Scenarios[i].Seconds > r.Scenarios[j].Seconds })
	if len(r.Scenarios) > topN {
		r.Scenarios = r.Scenarios[:topN]
	}

	// Slowest strategy runs and memo breakdown.
	runs := t.ByName("strategy_run")
	var slowest []RunSummary
	for _, s := range runs {
		if !s.Ended() {
			continue
		}
		rs := RunSummary{
			Strategy: s.Str("strategy"),
			Status:   s.Status(),
			Seconds:  s.Duration().Seconds(),
		}
		if s.Parent != nil {
			rs.Dataset = s.Parent.Str("dataset")
		}
		slowest = append(slowest, rs)
		for _, ev := range s.Events {
			if ev.Name != "eval" {
				continue
			}
			r.Memo.EvalEvents++
			switch ev.Attrs["memo"] {
			case "hit":
				r.Memo.Hits++
			case "miss":
				r.Memo.Misses++
			default:
				r.Memo.Off++
			}
		}
	}
	if r.Memo.EvalEvents > 0 {
		r.Memo.HitRate = float64(r.Memo.Hits) / float64(r.Memo.EvalEvents)
	}
	sort.Slice(slowest, func(i, j int) bool { return slowest[i].Seconds > slowest[j].Seconds })
	if len(slowest) > topN {
		slowest = slowest[:topN]
	}
	r.SlowestRuns = slowest

	// Completeness: every root span tree of the last epoch must have ended.
	// Earlier epochs may legitimately be truncated by rotation or a crash.
	for _, root := range t.Roots {
		if root.Epoch != last || root.Complete() {
			continue
		}
		r.Violations = append(r.Violations, fmt.Sprintf(
			"incomplete span tree in last epoch: %s id=%d (%s)", root.Name, root.ID, incompleteLeaf(root)))
	}

	if opts.Metrics != nil {
		r.crossCheck(t, *opts.Metrics)
		r.sloQuantiles(*opts.Metrics)
	}
	return r
}

// incompleteLeaf names the deepest incomplete span under root, for
// diagnostics. An incomplete span is either unended itself or has an
// incomplete child, so descending through incomplete children terminates at
// the most specific culprit.
func incompleteLeaf(root *Span) string {
	cur := root
	for {
		var next *Span
		for _, c := range cur.Children {
			if !c.Complete() {
				next = c
				break
			}
		}
		if next == nil {
			break
		}
		cur = next
	}
	return fmt.Sprintf("deepest unended: %s id=%d", cur.Name, cur.ID)
}

// crossCheck compares last-epoch span and event counts against the counters
// of a /metrics snapshot from the same process. Counters cover the whole
// process lifetime, so the check only runs when the trace's last epoch is
// fully retained (no dangling records).
func (r *Report) crossCheck(t *Trace, snap obs.Snapshot) {
	if t.DanglingRecords > 0 {
		r.Notes = append(r.Notes, "metrics cross-check skipped: rotation dropped part of the trace")
		return
	}
	last := t.LastEpoch()
	count := func(name, status string) int64 {
		var n int64
		for _, s := range t.Spans {
			if s.Epoch != last || s.Name != name {
				continue
			}
			if status != "" && s.Status() != status {
				continue
			}
			n++
		}
		return n
	}
	check := func(counter string, got int64, what string) {
		want, ok := snap.Counters[counter]
		if !ok {
			return
		}
		if got != want {
			r.Violations = append(r.Violations, fmt.Sprintf(
				"%s: trace has %d, counter %s says %d", what, got, counter, want))
		}
	}
	check("strategy.runs", count("strategy_run", ""), "strategy_run spans")
	var executed int64
	for _, s := range t.Spans {
		if s.Epoch == last && s.Name == "scenario" && s.Ended() && s.Status() != "canceled" {
			executed++
		}
	}
	check("pool.scenarios_executed", executed, "executed scenario spans")
	var hits, trainedEv int64
	for _, s := range t.Spans {
		if s.Epoch != last || s.Name != "strategy_run" {
			continue
		}
		for _, ev := range s.Events {
			if ev.Name != "eval" {
				continue
			}
			if ev.Attrs["memo"] == "hit" {
				hits++
			} else {
				trainedEv++
			}
		}
	}
	check("evals.replayed", hits, "memo-hit eval events")
	check("evals.trained", trainedEv, "trained eval events")
	if _, ok := snap.Counters["serve.queue.admitted"]; ok {
		check("serve.job.done", count("job", "done"), "done job spans")
		check("serve.job.failed", count("job", "failed"), "failed job spans")
		check("serve.job.drained", count("job", "drained"), "drained job spans")
		total := count("job", "")
		want := snap.Counters["serve.queue.admitted"] + snap.Counters["serve.job.resumed"]
		if total != want {
			r.Violations = append(r.Violations, fmt.Sprintf(
				"job spans: trace has %d, admitted+resumed says %d", total, want))
		}
	}
}

// sloQuantiles summarizes the serve latency histograms via bucket
// interpolation (obs.HistogramSnapshot.Quantile).
func (r *Report) sloQuantiles(snap obs.Snapshot) {
	var names []string
	for name := range snap.Histograms {
		if strings.HasPrefix(name, "serve.job.") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		s := SLOQuantiles{Name: name, Count: h.Count}
		if h.Count > 0 {
			s.P50, s.P95, s.P99, s.Max = h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99), h.Max
		}
		r.SLOs = append(r.SLOs, s)
	}
}

// exactQuantile interpolates the q-quantile of a sorted sample.
func exactQuantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	pos := q * float64(n-1)
	i := int(pos)
	if i+1 >= n {
		return sorted[n-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// WriteText renders the report for a terminal.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "trace: %d file(s), %d epoch(s), %d spans, %d events\n",
		len(r.Files), r.Epochs, r.Spans, r.Events)
	if r.MalformedLines > 0 || r.DanglingRecords > 0 {
		fmt.Fprintf(w, "  %d malformed line(s), %d dangling record(s)\n",
			r.MalformedLines, r.DanglingRecords)
	}
	if len(r.Jobs) > 0 {
		fmt.Fprintf(w, "\njobs (%d):\n", len(r.Jobs))
		for _, j := range r.Jobs {
			fmt.Fprintf(w, "  %-12s tenant=%-10s status=%-8s wait=%.3fs run=%.3fs e2e=%.3fs\n",
				j.ID, orDash(j.Tenant), j.Status, j.QueueWaitS, j.RunS, j.E2ES)
		}
	}
	if len(r.Tenants) > 0 {
		fmt.Fprintf(w, "\nper-tenant e2e latency (done jobs):\n")
		for _, tl := range r.Tenants {
			fmt.Fprintf(w, "  %-10s jobs=%-4d p50=%.3fs p95=%.3fs p99=%.3fs\n",
				tl.Tenant, tl.Jobs, tl.P50S, tl.P95S, tl.P99S)
		}
	}
	if len(r.Scenarios) > 0 {
		fmt.Fprintf(w, "\nscenario critical paths (top %d by duration):\n", len(r.Scenarios))
		for _, sc := range r.Scenarios {
			fmt.Fprintf(w, "  scenario=%-4d %-24s %.3fs  critical=%s (%.3fs, %.0f%%)\n",
				sc.Scenario, sc.Dataset, sc.Seconds, orDash(sc.Critical), sc.CriticalS, 100*sc.Fraction)
		}
	}
	if len(r.SlowestRuns) > 0 {
		fmt.Fprintf(w, "\nslowest strategy runs (top %d):\n", len(r.SlowestRuns))
		for _, rs := range r.SlowestRuns {
			fmt.Fprintf(w, "  %-24s %-24s %.3fs  status=%s\n", rs.Strategy, orDash(rs.Dataset), rs.Seconds, rs.Status)
		}
	}
	fmt.Fprintf(w, "\nmemo: %d evals, %d hits, %d misses, %d unshared (hit rate %.1f%%)\n",
		r.Memo.EvalEvents, r.Memo.Hits, r.Memo.Misses, r.Memo.Off, 100*r.Memo.HitRate)
	if len(r.SLOs) > 0 {
		fmt.Fprintf(w, "\nSLO histograms (bucket-interpolated):\n")
		for _, s := range r.SLOs {
			if s.Count == 0 {
				fmt.Fprintf(w, "  %-28s (no samples)\n", s.Name)
				continue
			}
			fmt.Fprintf(w, "  %-28s n=%-5d p50=%.3fs p95=%.3fs p99=%.3fs max=%.3fs\n",
				s.Name, s.Count, s.P50, s.P95, s.P99, s.Max)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "\nnote: %s\n", n)
	}
	if len(r.Violations) == 0 {
		fmt.Fprintf(w, "\ninvariants: ok\n")
		return
	}
	fmt.Fprintf(w, "\nINVARIANT VIOLATIONS (%d):\n", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  - %s\n", v)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
