package tracereport

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/declarative-fs/dfs/internal/obs"
)

// bufSink collects emitted trace lines in memory. Emit must copy: the
// tracer reuses its buffer between records.
type bufSink struct{ buf bytes.Buffer }

func (b *bufSink) Emit(line []byte) error {
	_, err := b.buf.Write(line)
	return err
}

// writeTrace dumps a sink to a file under dir and returns the path.
func writeTrace(t *testing.T, dir, name string, sinks ...*bufSink) string {
	t.Helper()
	var all bytes.Buffer
	for _, s := range sinks {
		all.Write(s.buf.Bytes())
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, all.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// emitJobTree writes one complete job → pool → scenario → strategy_run tree
// (two scenarios, one run each, one eval event per run) through tr.
func emitJobTree(tr *obs.Tracer, id, tenant, status string, memo string) {
	job := tr.StartSpan(0, "job", obs.Str("job", id), obs.Str("tenant", tenant), obs.Int("scenarios", 2))
	tr.Event(job, "dequeue", obs.Float("queue_wait_seconds", 0.25))
	pool := tr.StartSpan(job, "pool", obs.Int("scenarios", 2))
	for sc := int64(0); sc < 2; sc++ {
		s := tr.StartSpan(pool, "scenario", obs.Int("scenario", sc), obs.Str("dataset", "COMPAS"))
		run := tr.StartSpan(s, "strategy_run", obs.Str("strategy", "SFS(NR)"))
		tr.Event(run, "eval", obs.Str("memo", memo))
		tr.EndSpan(run, obs.Str("status", "ok"))
		tr.EndSpan(s, obs.Str("status", "ok"))
	}
	tr.EndSpan(pool)
	tr.EndSpan(job, obs.Str("status", status))
}

func TestLoadAndBuildCleanTrace(t *testing.T) {
	sink := &bufSink{}
	tr := obs.NewTracer(sink)
	tr.Event(0, obs.EpochEvent, obs.Str("daemon", "test"))
	emitJobTree(tr, "job-000000", "alice", "done", "miss")
	emitJobTree(tr, "job-000001", "bob", "done", "hit")

	path := writeTrace(t, t.TempDir(), "trace.jsonl", sink)
	trace, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Epochs != 1 {
		t.Fatalf("epochs = %d, want 1", trace.Epochs)
	}
	if trace.MalformedLines != 0 || trace.DanglingRecords != 0 {
		t.Fatalf("malformed %d / dangling %d, want 0/0", trace.MalformedLines, trace.DanglingRecords)
	}
	if got := len(trace.Roots); got != 2 {
		t.Fatalf("roots = %d, want 2 job trees", got)
	}

	r := Build(trace, Options{})
	if len(r.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", r.Violations)
	}
	if len(r.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(r.Jobs))
	}
	for _, js := range r.Jobs {
		if !js.Complete || js.Status != "done" || js.QueueWaitS != 0.25 {
			t.Fatalf("job summary off: %+v", js)
		}
	}
	if r.Memo.EvalEvents != 4 || r.Memo.Hits != 2 || r.Memo.Misses != 2 || r.Memo.HitRate != 0.5 {
		t.Fatalf("memo breakdown off: %+v", r.Memo)
	}
	if len(r.Scenarios) != 4 {
		t.Fatalf("scenario critical paths = %d, want 4", len(r.Scenarios))
	}
	if len(r.Tenants) != 2 {
		t.Fatalf("tenant latencies = %d, want 2 (alice, bob)", len(r.Tenants))
	}
}

// TestMultiEpochRestart simulates a daemon restart appending to the same
// file: span IDs restart from 1 in the second process, so the loader must
// split epochs at the marker instead of conflating the reused IDs.
func TestMultiEpochRestart(t *testing.T) {
	first := &bufSink{}
	tr1 := obs.NewTracer(first)
	tr1.Event(0, obs.EpochEvent, obs.Str("daemon", "test"))
	emitJobTree(tr1, "job-000000", "alice", "done", "off")

	second := &bufSink{}
	tr2 := obs.NewTracer(second)
	tr2.Event(0, obs.EpochEvent, obs.Str("daemon", "test"))
	emitJobTree(tr2, "job-000000", "alice", "done", "off") // resumed: same ID, new epoch

	path := writeTrace(t, t.TempDir(), "trace.jsonl", first, second)
	trace, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Epochs != 2 {
		t.Fatalf("epochs = %d, want 2", trace.Epochs)
	}
	if trace.DanglingRecords != 0 {
		t.Fatalf("dangling = %d, want 0 (epoch split failed)", trace.DanglingRecords)
	}
	r := Build(trace, Options{})
	// Same job ID in different epochs is a restart, not a duplicate.
	if len(r.Violations) != 0 {
		t.Fatalf("restart misread as violation: %v", r.Violations)
	}
	if len(r.Jobs) != 2 {
		t.Fatalf("jobs = %d, want one per epoch", len(r.Jobs))
	}
}

// TestImplicitEpochOnReusedSpanID drops the marker: the loader must still
// bump the epoch when a span ID it already saw starts again.
func TestImplicitEpochOnReusedSpanID(t *testing.T) {
	first, second := &bufSink{}, &bufSink{}
	emitJobTree(obs.NewTracer(first), "job-000000", "", "done", "off")
	emitJobTree(obs.NewTracer(second), "job-000001", "", "done", "off")

	path := writeTrace(t, t.TempDir(), "trace.jsonl", first, second)
	trace, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Epochs != 2 {
		t.Fatalf("epochs = %d, want 2 (implicit bump on reused span ID)", trace.Epochs)
	}
	if trace.DanglingRecords != 0 {
		t.Fatalf("dangling = %d, want 0", trace.DanglingRecords)
	}
}

func TestIncompleteTreeInLastEpochIsViolation(t *testing.T) {
	sink := &bufSink{}
	tr := obs.NewTracer(sink)
	job := tr.StartSpan(0, "job", obs.Str("job", "job-000000"))
	pool := tr.StartSpan(job, "pool")
	tr.EndSpan(pool)
	// job span never ends: the daemon died mid-run.

	path := writeTrace(t, t.TempDir(), "trace.jsonl", sink)
	trace, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	r := Build(trace, Options{})
	if len(r.Violations) != 1 || !strings.Contains(r.Violations[0], "incomplete span tree") {
		t.Fatalf("want one incomplete-tree violation, got %v", r.Violations)
	}
}

func TestDuplicateJobTreeIsViolation(t *testing.T) {
	sink := &bufSink{}
	tr := obs.NewTracer(sink)
	emitJobTree(tr, "job-000000", "alice", "done", "off")
	emitJobTree(tr, "job-000000", "alice", "done", "off") // same epoch!

	path := writeTrace(t, t.TempDir(), "trace.jsonl", sink)
	trace, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	r := Build(trace, Options{})
	if len(r.Violations) != 1 || !strings.Contains(r.Violations[0], "span trees in epoch") {
		t.Fatalf("want one duplicate-job violation, got %v", r.Violations)
	}
}

// TestCrossCheckAgainstCounters feeds Build a metrics snapshot that first
// matches the trace exactly, then disagrees, and finally arrives alongside
// a trace whose head was rotated away (dangling records) — which must skip
// the cross-check with a note instead of inventing violations.
func TestCrossCheckAgainstCounters(t *testing.T) {
	sink := &bufSink{}
	tr := obs.NewTracer(sink)
	tr.Event(0, obs.EpochEvent)
	emitJobTree(tr, "job-000000", "alice", "done", "miss")
	path := writeTrace(t, t.TempDir(), "trace.jsonl", sink)
	trace, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	match := &obs.Snapshot{Counters: map[string]int64{
		"strategy.runs":           2,
		"pool.scenarios_executed": 2,
		"evals.trained":           2,
		"evals.replayed":          0,
		"serve.queue.admitted":    1,
		"serve.job.resumed":       0,
		"serve.job.done":          1,
		"serve.job.failed":        0,
		"serve.job.drained":       0,
	}}
	if r := Build(trace, Options{Metrics: match}); len(r.Violations) != 0 {
		t.Fatalf("matching counters produced violations: %v", r.Violations)
	}

	mismatch := &obs.Snapshot{Counters: map[string]int64{"strategy.runs": 5}}
	r := Build(trace, Options{Metrics: mismatch})
	if len(r.Violations) != 1 || !strings.Contains(r.Violations[0], "strategy.runs") {
		t.Fatalf("want one strategy.runs mismatch, got %v", r.Violations)
	}

	// Sever the trace head: keep only the tail after the first span start,
	// producing dangling end records.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	tail := bytes.Join(lines[len(lines)/2:], nil)
	cut := filepath.Join(t.TempDir(), "cut.jsonl")
	if err := os.WriteFile(cut, tail, 0o644); err != nil {
		t.Fatal(err)
	}
	cutTrace, err := Load(cut)
	if err != nil {
		t.Fatal(err)
	}
	if cutTrace.DanglingRecords == 0 {
		t.Fatal("expected dangling records after severing the head")
	}
	r = Build(cutTrace, Options{Metrics: mismatch})
	for _, v := range r.Violations {
		if strings.Contains(v, "counter") {
			t.Fatalf("cross-check ran despite dangling records: %v", r.Violations)
		}
	}
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "cross-check") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want a skipped-cross-check note, got %v", r.Notes)
	}
}

// TestMalformedTailTolerated appends a torn line (a crash mid-write): the
// loader must count it, not fail.
func TestMalformedTailTolerated(t *testing.T) {
	sink := &bufSink{}
	tr := obs.NewTracer(sink)
	emitJobTree(tr, "job-000000", "", "done", "off")
	sink.buf.WriteString(`{"t":"start","id":99,"na`) // torn, no newline

	path := writeTrace(t, t.TempDir(), "trace.jsonl", sink)
	trace, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if trace.MalformedLines != 1 {
		t.Fatalf("malformed = %d, want 1", trace.MalformedLines)
	}
	if len(trace.Roots) != 1 {
		t.Fatalf("roots = %d, want the intact tree", len(trace.Roots))
	}
}

// TestWriteTextRendersSections smoke-checks the human-readable renderer.
func TestWriteTextRendersSections(t *testing.T) {
	sink := &bufSink{}
	tr := obs.NewTracer(sink)
	emitJobTree(tr, "job-000000", "alice", "done", "hit")
	path := writeTrace(t, t.TempDir(), "trace.jsonl", sink)
	trace, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	Build(trace, Options{}).WriteText(&out)
	text := out.String()
	for _, want := range []string{"job-000000", "alice", "memo", "invariants: ok"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text report missing %q:\n%s", want, text)
		}
	}
}
