module github.com/declarative-fs/dfs

go 1.22
