GO ?= go

.PHONY: all vet build test race bench ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 45m ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

ci: vet build race
