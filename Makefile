GO ?= go
BENCHTIME ?= 1x
BENCH_NOTE ?=
GIT_SHA := $(shell git rev-parse --short HEAD 2>/dev/null || echo local)
GIT_MSG := $(shell git log -1 --format=%s 2>/dev/null || echo local)

.PHONY: all vet build test race bench bench-compare ci dfsd dfsload

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 45m ./...

# bench runs the top-level Benchmark* functions plus the numeric-kernel and
# fan-out scheduling micro-benchmarks and appends the parsed results (name,
# ns/op, allocs/op) to the BENCH_PR10.json trajectory so successive PRs can
# compare (earlier history lives in BENCH_PR2.json and BENCH_PR5.json), and
# mirrors the run into the github-action-benchmark dashboard data at
# dev/bench/data.js. Override BENCHTIME for steadier numbers, e.g. `make
# bench BENCHTIME=3x BENCH_NOTE="after kernel rewrite"`.
bench:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -run=^$$ \
		. ./internal/linalg ./internal/ranking ./internal/model ./internal/serve \
		| $(GO) run ./cmd/benchjson -out BENCH_PR10.json -note "$(BENCH_NOTE)" \
			-gha dev/bench/data.js -seed BENCH_PR2.json,BENCH_PR5.json,BENCH_PR10.json \
			-commit "$(GIT_SHA)" -commit-message "$(GIT_MSG)"

# bench-compare is the CI regression gate: it runs the same benchmarks but
# writes nothing — the run is diffed against the newest tracked value of
# each series in dev/bench/data.js and the target fails when ns/op or
# allocs/op grew by more than 10% (tune with -compare-threshold). The
# fan-out scheduling benchmarks measure wall clock over real sleeps, so
# they are tracked for trajectory but exempt from the gate.
bench-compare:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -run=^$$ \
		. ./internal/linalg ./internal/ranking ./internal/model ./internal/serve \
		| $(GO) run ./cmd/benchjson -compare dev/bench/data.js -compare-skip '^BenchmarkFanout'

# dfsd builds the selection-service daemon (see README "Serving").
dfsd:
	$(GO) build -o dfsd ./cmd/dfsd

# dfsload builds the load-test harness for dfsd.
dfsload:
	$(GO) build -o dfsload ./cmd/dfsload

ci: vet build race
