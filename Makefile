GO ?= go
BENCHTIME ?= 1x
BENCH_NOTE ?=

.PHONY: all vet build test race bench ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 45m ./...

# bench runs the top-level Benchmark* functions and appends the parsed
# results (name, ns/op, allocs/op) to the BENCH_PR2.json trajectory so
# successive PRs can compare. Override BENCHTIME for steadier numbers, e.g.
# `make bench BENCHTIME=3x BENCH_NOTE="after memoization"`.
bench:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -run=^$$ . \
		| $(GO) run ./cmd/benchjson -out BENCH_PR2.json -note "$(BENCH_NOTE)"

ci: vet build race
