// Package dfs is Declarative Feature Selection: a model-agnostic way to
// enforce user-specified constraints — accuracy, fairness (equal
// opportunity), differential privacy, safety against adversarial examples,
// feature-set size, and search time — on machine-learning systems by
// selecting the features the downstream model is allowed to see.
//
// It is a from-scratch Go reproduction of "Enforcing Constraints for Machine
// Learning Systems via Declarative Feature Selection: An Experimental Study"
// (Neutatz, Biessmann, Abedjan — SIGMOD 2021): the 16 feature-selection
// strategies of the study, the three benchmark classifiers (logistic
// regression, Gaussian naive Bayes, CART decision trees) plus a linear SVM,
// differentially private model variants, a HopSkipJump-style evasion attack
// for the safety metric, and the meta-learning optimizer that picks the most
// promising strategy for a scenario.
//
// # Quickstart
//
//	d, _ := dfs.GenerateBuiltin("COMPAS", 42)
//	sel, err := dfs.Select(d, dfs.LR, dfs.Constraints{
//		MinF1:         0.65,
//		MinEO:         0.90,   // equal opportunity ≥ 0.90
//		MaxSearchCost: 1000,   // search budget in cost units
//		MaxFeatureFrac: 1,
//	})
//	if err == nil && sel.Satisfied {
//		fmt.Println("use features:", sel.FeatureNames)
//	}
//
// See the examples/ directory for fairness, privacy, safety, and portfolio
// walkthroughs, and cmd/benchmark for regenerating the paper's tables.
package dfs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/declarative-fs/dfs/internal/budget"
	"github.com/declarative-fs/dfs/internal/constraint"
	"github.com/declarative-fs/dfs/internal/core"
	"github.com/declarative-fs/dfs/internal/dataset"
	"github.com/declarative-fs/dfs/internal/evalstore"
	"github.com/declarative-fs/dfs/internal/metrics"
	"github.com/declarative-fs/dfs/internal/model"
	"github.com/declarative-fs/dfs/internal/obs"
	"github.com/declarative-fs/dfs/internal/synth"
)

// Constraints declares what the selected feature set must guarantee. Zero
// values disable the optional constraints; MinF1 and MaxSearchCost are
// mandatory. MaxSearchCost is expressed in deterministic cost units (one
// unit ≈ one second of a 2.6 GHz core; see DESIGN.md §4).
type Constraints = constraint.Set

// Scores are the measured metrics of a feature subset.
type Scores = constraint.Scores

// Dataset is a preprocessed, model-ready dataset: features scaled to [0, 1],
// a binary target, and a binary sensitive attribute for fairness metrics.
type Dataset = dataset.Dataset

// Table is a raw dataset with typed (numeric/categorical) columns and
// missing values, as loaded from CSV or produced by a generator.
type Table = dataset.Table

// ModelKind selects the classification model family.
type ModelKind = model.Kind

// Model families.
const (
	// LR is l2-regularized logistic regression.
	LR = model.KindLR
	// NB is Gaussian naive Bayes.
	NB = model.KindNB
	// DT is a CART decision tree.
	DT = model.KindDT
	// SVM is a linear support vector machine.
	SVM = model.KindSVM
)

// Strategies lists the 16 feature-selection strategy names of the study, in
// the paper's Table 3 order. Any of them can be passed to WithStrategy.
func Strategies() []string {
	return append([]string(nil), core.StrategyNames...)
}

// BuiltinDatasets lists the 19 synthetic benchmark dataset profiles
// mirroring the paper's Table 2.
func BuiltinDatasets() []string { return synth.Names() }

// GenerateBuiltin materializes a built-in dataset profile; the same
// (name, seed) pair always produces identical data.
func GenerateBuiltin(name string, seed uint64) (*Dataset, error) {
	p, err := synth.ByName(name)
	if err != nil {
		return nil, err
	}
	return synth.GenerateDataset(&p, seed)
}

// GenerateBuiltinTable materializes a built-in profile as a raw table
// (typed columns, missing values) before preprocessing — e.g. to export
// with WriteCSV.
func GenerateBuiltinTable(name string, seed uint64) (*Table, error) {
	p, err := synth.ByName(name)
	if err != nil {
		return nil, err
	}
	return synth.Generate(&p, seed)
}

// LoadCSV reads a raw table in the package's self-describing CSV layout
// (feature headers "name:num" or "name:cat:<cardinality>", then
// "__target__" and "__sensitive__" columns; empty cells are missing values).
func LoadCSV(r io.Reader, name string) (*Table, error) {
	return dataset.ReadCSV(r, name)
}

// WriteCSV serializes a raw table in the layout LoadCSV reads.
func WriteCSV(w io.Writer, t *Table) error { return dataset.WriteCSV(w, t) }

// Preprocess applies the study's standard pipeline — mean imputation and
// min-max scaling for numeric columns, one-hot encoding for categorical
// columns — producing a model-ready dataset.
func Preprocess(t *Table) (*Dataset, error) { return dataset.Preprocess(t) }

// DatasetStats summarizes a dataset (class balance, group base-rate gap,
// degenerate features) — the numbers to check before declaring constraints.
type DatasetStats = dataset.Stats

// Describe computes summary statistics of a model-ready dataset.
func Describe(d *Dataset) DatasetStats { return dataset.Describe(d) }

// Selection is the outcome of a DFS run.
type Selection struct {
	// Satisfied reports whether a feature set meeting every constraint on
	// both validation and test data was found.
	Satisfied bool
	// Strategy is the strategy that produced the result.
	Strategy string
	// Model is the model family the selection was confirmed under; set by
	// SelectAuto (empty for the single-model entry points, where the caller
	// already knows it).
	Model ModelKind
	// Features are the selected feature column indices (nil if none).
	Features []int
	// FeatureNames are the corresponding column names.
	FeatureNames []string
	// Validation and Test hold the confirmed scores of the selection.
	Validation, Test Scores
	// Cost is the search cost spent until the solution (or in total when
	// unsatisfied), in the same units as Constraints.MaxSearchCost.
	Cost float64
	// BestDistance is the closest any candidate came to satisfying the
	// constraints (Eq. 1), when Satisfied is false.
	BestDistance float64
	// Report holds the per-strategy outcomes of a portfolio run, in the
	// requested strategy order — including failed members, which no longer
	// sink the portfolio (see RunPortfolioContext). Nil for single-strategy
	// runs.
	Report []StrategyReport
}

// StrategyStatus classifies one portfolio member's outcome.
type StrategyStatus string

// Portfolio member outcomes.
const (
	// StrategySatisfied means the member confirmed a satisfying selection.
	StrategySatisfied StrategyStatus = "satisfied"
	// StrategyUnsatisfied means the member completed without a satisfying
	// selection (budget exhausted or search space exhausted).
	StrategyUnsatisfied StrategyStatus = "unsatisfied"
	// StrategyFailed means the member died — panic, corrupted data, or a
	// transient failure that outlived its retries — and was excluded from
	// the portfolio decision.
	StrategyFailed StrategyStatus = "failed"
)

// StrategyReport is one portfolio member's outcome: enough to alert on
// partial degradation even when the portfolio as a whole succeeded.
type StrategyReport struct {
	// Strategy is the member's strategy name.
	Strategy string
	// Status classifies the outcome.
	Status StrategyStatus
	// Cost is the search cost the member spent (cost at solution when
	// satisfied, total otherwise; zero when the member failed before
	// running).
	Cost float64
	// Err is the failure when Status is StrategyFailed; errors.As with a
	// *StrategyError target recovers the attribution (and, for isolated
	// panics, the stack).
	Err error
}

// StrategyError is the typed failure of one strategy run: the strategy name,
// the cause, and — for panics recovered by the execution layer — the stack.
type StrategyError = core.StrategyError

type options struct {
	strategy      string
	hpo           bool
	utility       bool
	seed          uint64
	maxEvals      int
	wallClock     time.Duration
	custom        []core.CustomConstraint
	noShare       bool
	kernelWorkers int
	evalStore     string
}

// Option customizes Select and RunPortfolio.
type Option func(*options)

// WithStrategy forces a specific strategy (see Strategies for names). The
// default is SFFS(NR), the strategy with the best overall coverage across
// constraint types in the study (Table 5).
func WithStrategy(name string) Option { return func(o *options) { o.strategy = name } }

// WithHPO enables the study's hyperparameter grid search per feature subset.
func WithHPO() Option { return func(o *options) { o.hpo = true } }

// WithUtilityMode keeps searching after the constraints are met, maximizing
// F1 subject to them (Eq. 2), until the search budget is spent.
func WithUtilityMode() Option { return func(o *options) { o.utility = true } }

// WithSeed fixes all randomness (data splitting, search, attacks, DP noise).
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithMaxEvaluations bounds the number of trained feature subsets,
// independent of the cost budget.
func WithMaxEvaluations(n int) Option { return func(o *options) { o.maxEvals = n } }

// WithWallClock replaces the simulated cost budget with a literal wall-clock
// deadline: the search stops after d of real time, whatever
// Constraints.MaxSearchCost says (it must still be positive). Use this for
// production deployments; the simulated meter remains the right choice for
// reproducible experiments.
func WithWallClock(d time.Duration) Option { return func(o *options) { o.wallClock = d } }

// WithoutEvaluationSharing disables the cross-member trained-subset memo in
// RunPortfolio: every member retrains every subset privately, as if it ran
// alone. The selection is identical either way — sharing only skips redundant
// physical training while each member's budget meter still pays the full
// simulated cost — so this is an escape hatch for debugging and verification,
// not a semantic knob.
func WithoutEvaluationSharing() Option { return func(o *options) { o.noShare = true } }

// WithKernelWorkers caps the data-parallel goroutines inside the numeric
// kernels of the search (the LR gradient pass, ReliefF and MCFS rankings).
// The default (0) uses all of GOMAXPROCS. Worker count only changes
// scheduling, never results: the kernels reduce over fixed chunks merged in
// a fixed order, so the selection is bit-identical at every setting. Set
// this when embedding DFS in a process that runs several searches at once
// and the combined goroutine count should stay bounded.
func WithKernelWorkers(n int) Option { return func(o *options) { o.kernelWorkers = n } }

// WithEvalStore shares trained-subset evaluations durably across process
// lifetimes: every physical training is appended to a crash-safe,
// content-addressed store under dir, and any later run — same process or not
// — that evaluates the same subset under the same dataset, model,
// constraints, and seed replays the stored scores bit-identically instead of
// retraining. Multiple processes may point at the same directory
// concurrently; each appends to its own locked segment. The store is an
// optimization only: selections are byte-identical with or without it, and
// runtime write failures degrade to plain retraining (a dir that cannot be
// opened, however, fails the call — the caller asked for durability it can't
// have). Ignored under WithoutEvaluationSharing.
func WithEvalStore(dir string) Option { return func(o *options) { o.evalStore = dir } }

// CustomMetric scores one evaluated feature subset from the model's
// predictions; it must return a value in [0, 1] and be deterministic. The
// built-in DemographicParity and EqualizedOdds helpers are ready-made
// CustomMetrics.
type CustomMetric func(yTrue, yPred, sensitive []int) float64

// WithCustomConstraint declares an additional minimum-threshold constraint
// over any user-defined metric (the paper's §3 framework claim: any numeric
// score over the dataset and model can be enforced). The metric joins the
// Eq. 1 distance objective and the validation-then-test confirmation like
// every built-in constraint.
func WithCustomConstraint(name string, min float64, metric CustomMetric) Option {
	return func(o *options) {
		o.custom = append(o.custom, core.CustomConstraint{
			Name: name,
			Min:  min,
			Metric: func(in core.MetricInput) float64 {
				return metric(in.YTrue, in.YPred, in.Sensitive)
			},
		})
	}
}

// DemographicParity is a ready-made CustomMetric:
// 1 − |P(ŷ=1 | minority) − P(ŷ=1 | majority)|.
func DemographicParity(_, yPred, sensitive []int) float64 {
	return metrics.DemographicParity(yPred, sensitive)
}

// EqualizedOdds is a ready-made CustomMetric: 1 − max(|ΔTPR|, |ΔFPR|)
// between the protected groups (stricter than equal opportunity).
func EqualizedOdds(yTrue, yPred, sensitive []int) float64 {
	return metrics.EqualizedOdds(yTrue, yPred, sensitive)
}

func buildOptions(opts []Option) options {
	o := options{strategy: "SFFS(NR)", seed: 1}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// newStrategy builds a strategy by name; tests swap it to inject faults into
// otherwise-opaque portfolio members.
var newStrategy = core.New

// Select searches for one feature subset of d that satisfies cs when
// training the given model family, following the DFS workflow of the paper:
// stratified 3:1:1 split, wrapper evaluation with the Eq. 1 distance
// objective, validation-then-test confirmation.
func Select(d *Dataset, kind ModelKind, cs Constraints, opts ...Option) (*Selection, error) {
	return SelectContext(context.Background(), d, kind, cs, opts...)
}

// SelectContext is Select with cancellation: the search stops at the next
// budget charge point once ctx is done (well under one subset evaluation)
// and returns ctx.Err(). The run is panic-isolated — a dying strategy
// surfaces as a *StrategyError, never a process crash — and failures
// classified transient (degenerate resampled splits, singular-matrix
// rankings) are retried a bounded number of times under deterministically
// perturbed seeds. With no faults injected and the same seed, the result is
// identical to Select's.
func SelectContext(ctx context.Context, d *Dataset, kind ModelKind, cs Constraints, opts ...Option) (*Selection, error) {
	o := buildOptions(opts)
	ctx, end := apiSpan(ctx, "select",
		obs.Str("strategy", o.strategy), obs.Str("model", string(kind)))
	scn, err := newScenario(d, kind, cs, o)
	if err != nil {
		end(nil, err)
		return nil, err
	}
	s, err := newStrategy(o.strategy)
	if err != nil {
		end(nil, err)
		return nil, err
	}
	var memo *core.SharedMemo
	if o.evalStore != "" && !o.noShare {
		memo = core.NewSharedMemo()
	}
	closeStore, err := attachStore(ctx, o, scn, memo)
	if err != nil {
		end(nil, err)
		return nil, err
	}
	var res core.RunResult
	if o.wallClock > 0 {
		res, err = core.RunStrategyWithMeterSharedContext(ctx, s, scn, budget.NewWall(o.wallClock), memo, o.seed, o.maxEvals)
	} else {
		res, err = core.RunStrategySharedContext(ctx, s, scn, memo, o.seed, o.maxEvals)
	}
	// The store is a cache: a failed flush at close only costs future warmth,
	// never this run's result.
	_ = closeStore()
	if err != nil {
		end(nil, err)
		return nil, err
	}
	sel := toSelection(d, res)
	end(sel, nil)
	return sel, nil
}

// attachStore opens the durable evaluation store declared by WithEvalStore
// and attaches it to memo under scn's content hash. The returned closer
// flushes and releases the store; both it and the open are no-ops when no
// store is configured or memo is nil (WithoutEvaluationSharing).
func attachStore(ctx context.Context, o options, scn *core.Scenario, memo *core.SharedMemo) (func() error, error) {
	if o.evalStore == "" || memo == nil {
		return func() error { return nil }, nil
	}
	st, err := evalstore.Open(o.evalStore, evalstore.Options{Metrics: obs.FromContext(ctx).Metrics()})
	if err != nil {
		return nil, err
	}
	memo.AttachDurable(st, scn.ContentHash())
	return st.Close, nil
}

// apiSpan opens a span for one public API call and returns the span-carrying
// context plus a closer that records the outcome. Without a runtime in ctx
// both are free: the closer is a shared no-op and ctx is returned untouched.
func apiSpan(ctx context.Context, name string, attrs ...obs.Attr) (context.Context, func(sel *Selection, err error)) {
	rt := obs.FromContext(ctx)
	if rt == nil {
		return ctx, func(*Selection, error) {}
	}
	span := rt.Tracer().StartSpan(obs.SpanFromContext(ctx), name, attrs...)
	return obs.ContextWithSpan(ctx, span), func(sel *Selection, err error) {
		switch {
		case err != nil:
			rt.Tracer().EndSpan(span,
				obs.Str("status", "error"),
				obs.Str("category", string(core.Classify(err))),
				obs.Str("error", err.Error()))
		case sel != nil && sel.Satisfied:
			rt.Tracer().EndSpan(span,
				obs.Str("status", "satisfied"),
				obs.Str("strategy", sel.Strategy),
				obs.Float("cost", sel.Cost))
		default:
			rt.Tracer().EndSpan(span, obs.Str("status", "unsatisfied"))
		}
	}
}

// RunPortfolio runs several strategies on the same scenario — each with its
// own copy of the declared budget, mirroring the embarrassingly parallel
// execution of §6.5 — and returns the fastest satisfying selection, or, when
// none satisfies, the selection that came closest. Strategies execute
// concurrently (one goroutine each); results are deterministic regardless
// of scheduling. With an empty strategy list it runs the study's best top-5
// coverage portfolio (Table 8).
func RunPortfolio(d *Dataset, kind ModelKind, cs Constraints, strategies []string, opts ...Option) (*Selection, error) {
	return RunPortfolioContext(context.Background(), d, kind, cs, strategies, opts...)
}

// RunPortfolioContext is RunPortfolio with cancellation and graceful
// degradation. Each member runs isolated: a panicking or erroring strategy
// is recorded as failed in Selection.Report while the survivors still
// compete, so the portfolio returns the best selection among surviving
// members and errors only when every member failed (a joined error naming
// each strategy). Cancelling ctx stops all members at their next charge
// point and returns ctx.Err().
func RunPortfolioContext(ctx context.Context, d *Dataset, kind ModelKind, cs Constraints, strategies []string, opts ...Option) (*Selection, error) {
	if len(strategies) == 0 {
		strategies = []string{"TPE(FCBF)", "SFFS(NR)", "TPE(NR)", "TPE(MIM)", "SA(NR)"}
	}
	o := buildOptions(opts)
	ctx, end := apiSpan(ctx, "portfolio",
		obs.Int("members", int64(len(strategies))), obs.Str("model", string(kind)))
	// One scenario serves every member: the split, constraints, and custom
	// metrics are identical across strategies, and runs never mutate the
	// scenario (per-run state lives in each member's evaluator). Sharing it
	// is what lets the trained-subset memo deduplicate across members.
	scn, err := newScenario(d, kind, cs, o)
	if err != nil {
		end(nil, err)
		return nil, err
	}
	var memo *core.SharedMemo
	if !o.noShare {
		memo = core.NewSharedMemo()
	}
	closeStore, err := attachStore(ctx, o, scn, memo)
	if err != nil {
		end(nil, err)
		return nil, err
	}
	defer func() { _ = closeStore() }()

	type outcome struct {
		sel *Selection
		err error
	}
	outcomes := make([]outcome, len(strategies))
	var wg sync.WaitGroup
	for i, name := range strategies {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			s, err := newStrategy(name)
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			res, err := core.RunStrategySharedContext(ctx, s, scn, memo, o.seed, o.maxEvals)
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			outcomes[i] = outcome{sel: toSelection(d, res)}
		}(i, name)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		end(nil, err)
		return nil, err
	}

	rt := obs.FromContext(ctx)
	report := make([]StrategyReport, len(strategies))
	var best *Selection
	var failures []error
	for i, out := range outcomes {
		r := StrategyReport{Strategy: strategies[i]}
		if out.err != nil {
			r.Status = StrategyFailed
			r.Err = out.err
			failures = append(failures, fmt.Errorf("%s: %w", strategies[i], out.err))
			if rt != nil {
				rt.Metrics().Counter("portfolio.degraded").Inc()
				rt.Tracer().Event(obs.SpanFromContext(ctx), "degradation",
					obs.Str("strategy", strategies[i]),
					obs.Str("category", string(core.Classify(out.err))))
			}
		} else {
			r.Cost = out.sel.Cost
			if out.sel.Satisfied {
				r.Status = StrategySatisfied
			} else {
				r.Status = StrategyUnsatisfied
			}
			if best == nil || betterSelection(out.sel, best) {
				best = out.sel
			}
		}
		report[i] = r
	}
	if best == nil {
		err := fmt.Errorf("dfs: all %d portfolio strategies failed: %w",
			len(strategies), errors.Join(failures...))
		end(nil, err)
		return nil, err
	}
	best.Report = report
	end(best, nil)
	return best, nil
}

// betterSelection prefers satisfied-and-faster, then lower distance.
func betterSelection(a, b *Selection) bool {
	if a.Satisfied != b.Satisfied {
		return a.Satisfied
	}
	if a.Satisfied {
		return a.Cost < b.Cost
	}
	return a.BestDistance < b.BestDistance
}

func newScenario(d *Dataset, kind ModelKind, cs Constraints, o options) (*core.Scenario, error) {
	mode := core.ModeSatisfy
	if o.utility {
		mode = core.ModeMaximizeUtility
	}
	scn, err := core.NewScenario(d, kind, cs, o.hpo, mode, o.seed)
	if err != nil {
		return nil, err
	}
	scn.Custom = o.custom
	scn.KernelWorkers = o.kernelWorkers
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	return scn, nil
}

func toSelection(d *Dataset, res core.RunResult) *Selection {
	sel := &Selection{
		Satisfied:    res.Satisfied,
		Strategy:     res.Strategy,
		Features:     res.Features,
		Validation:   res.ValScores,
		Test:         res.TestScores,
		BestDistance: res.BestValDistance,
	}
	if res.Satisfied {
		sel.Cost = res.CostAtSolution
	} else {
		sel.Cost = res.TotalCost
	}
	for _, j := range res.Features {
		if j < len(d.FeatureNames) {
			sel.FeatureNames = append(sel.FeatureNames, d.FeatureNames[j])
		} else {
			sel.FeatureNames = append(sel.FeatureNames, fmt.Sprintf("f%d", j))
		}
	}
	return sel
}

// CheckTransfer re-evaluates a selection's feature set under another model
// family (the reusability experiment of Table 7): it retrains the target
// model on the same features and reports the achieved test scores, so the
// caller can verify which constraints still hold after a model swap.
func CheckTransfer(d *Dataset, sel *Selection, target ModelKind, cs Constraints, opts ...Option) (Scores, error) {
	if sel == nil || len(sel.Features) == 0 {
		return Scores{}, fmt.Errorf("dfs: selection has no features to transfer")
	}
	o := buildOptions(opts)
	scn, err := newScenario(d, target, cs, o)
	if err != nil {
		return Scores{}, err
	}
	ev, err := core.NewEvaluator(scn, unlimitedMeter{}, o.seed, 0)
	if err != nil {
		return Scores{}, err
	}
	mask := make([]bool, d.Features())
	for _, j := range sel.Features {
		if j < 0 || j >= len(mask) {
			return Scores{}, fmt.Errorf("dfs: feature index %d out of range", j)
		}
		mask[j] = true
	}
	return ev.EvaluateOnTest(&core.Candidate{Mask: mask})
}

// unlimitedMeter satisfies budget accounting for post-hoc evaluations.
type unlimitedMeter struct{}

func (unlimitedMeter) Charge(float64) error { return nil }
func (unlimitedMeter) Spent() float64       { return 0 }
func (unlimitedMeter) Limit() float64       { return 0 }
func (unlimitedMeter) Exhausted() bool      { return false }
