package dfs

import (
	"bytes"
	"sync"
	"testing"
)

var (
	advisorOnce sync.Once
	advisor     *Advisor
	advisorErr  error
)

// trainedAdvisor self-trains a tiny advisor once for all tests in this file.
func trainedAdvisor(t *testing.T) *Advisor {
	t.Helper()
	advisorOnce.Do(func() {
		advisor, advisorErr = TrainAdvisor(AdvisorConfig{
			Scenarios: 10,
			Datasets:  []string{"COMPAS", "Indian Liver Patient", "Brazil Tourism"},
			Seed:      3,
			MaxEvals:  25,
		})
	})
	if advisorErr != nil {
		t.Fatal(advisorErr)
	}
	return advisor
}

func TestAdvisorRecommendRanksAllStrategies(t *testing.T) {
	a := trainedAdvisor(t)
	d, err := GenerateBuiltin("COMPAS", 42)
	if err != nil {
		t.Fatal(err)
	}
	cs := Constraints{MinF1: 0.6, MaxSearchCost: 1000, MaxFeatureFrac: 1}
	ranked, err := a.Recommend(d, LR, cs, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 16 {
		t.Fatalf("ranking length %d", len(ranked))
	}
	seen := map[string]bool{}
	for _, s := range ranked {
		if seen[s] {
			t.Fatalf("duplicate strategy %s in ranking", s)
		}
		seen[s] = true
	}
}

func TestAdvisorSelectRunsTopStrategy(t *testing.T) {
	a := trainedAdvisor(t)
	d, err := GenerateBuiltin("COMPAS", 42)
	if err != nil {
		t.Fatal(err)
	}
	cs := Constraints{MinF1: 0.5, MaxSearchCost: 3000, MaxFeatureFrac: 1}
	sel, err := a.Select(d, LR, cs, WithSeed(2), WithMaxEvaluations(40))
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := a.Recommend(d, LR, cs, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Strategy != ranked[0] {
		t.Fatalf("selection used %q, advisor recommended %q", sel.Strategy, ranked[0])
	}
}

func TestAdvisorSelectDynamic(t *testing.T) {
	a := trainedAdvisor(t)
	d, err := GenerateBuiltin("COMPAS", 42)
	if err != nil {
		t.Fatal(err)
	}
	cs := Constraints{MinF1: 0.5, MaxSearchCost: 3000, MaxFeatureFrac: 1}
	sel, err := a.SelectDynamic(d, LR, cs, 3, WithSeed(2), WithMaxEvaluations(60))
	if err != nil {
		t.Fatal(err)
	}
	if sel == nil {
		t.Fatal("nil selection")
	}
	if sel.Satisfied && len(sel.Features) == 0 {
		t.Fatal("satisfied without features")
	}
}

func TestAdvisorSaveLoadRoundTrip(t *testing.T) {
	a := trainedAdvisor(t)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAdvisor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d, err := GenerateBuiltin("COMPAS", 42)
	if err != nil {
		t.Fatal(err)
	}
	cs := Constraints{MinF1: 0.6, MaxSearchCost: 1000, MaxFeatureFrac: 1}
	want, err := a.Recommend(d, LR, cs, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Recommend(d, LR, cs, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranking differs after roundtrip: %v vs %v", got, want)
		}
	}
}

func TestLoadAdvisorRejectsGarbage(t *testing.T) {
	if _, err := LoadAdvisor(bytes.NewBufferString("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestTrainAdvisorRejectsZeroData(t *testing.T) {
	if _, err := TrainAdvisor(AdvisorConfig{Scenarios: 1, Datasets: []string{"nope"}}); err == nil {
		t.Fatal("unknown training dataset accepted")
	}
}

func TestSelectAutoPicksAModel(t *testing.T) {
	d, err := GenerateBuiltin("Indian Liver Patient", 7)
	if err != nil {
		t.Fatal(err)
	}
	cs := Constraints{MinF1: 0.4, MaxSearchCost: 6000, MaxFeatureFrac: 1}
	sel, err := SelectAuto(d, cs, WithSeed(4), WithMaxEvaluations(40))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Model != LR && sel.Model != NB && sel.Model != DT {
		t.Fatalf("selected model %q", sel.Model)
	}
	if sel.Satisfied && sel.Test.F1 < 0.4 {
		t.Fatalf("satisfied below threshold: %v", sel.Test.F1)
	}
}

func TestSelectAutoInvalidConstraints(t *testing.T) {
	d, err := GenerateBuiltin("COMPAS", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SelectAuto(d, Constraints{MinF1: -1, MaxSearchCost: 10}); err == nil {
		t.Fatal("invalid constraints accepted")
	}
}
