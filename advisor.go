package dfs

import (
	"fmt"
	"io"

	"github.com/declarative-fs/dfs/internal/bench"
	"github.com/declarative-fs/dfs/internal/core"
	"github.com/declarative-fs/dfs/internal/optimizer"
	"github.com/declarative-fs/dfs/internal/xrand"
)

// Advisor is the paper's meta-learning DFS optimizer (§5): one balanced
// random forest per strategy, trained on featurized ML scenarios, that
// predicts which strategy is most likely to satisfy a new scenario without
// trying any of them on the data.
type Advisor struct {
	opt *optimizer.Optimizer
}

// AdvisorConfig controls self-training of an Advisor.
type AdvisorConfig struct {
	// Scenarios is the number of fuzzed training scenarios; 0 means 40.
	// Training cost grows linearly: every scenario runs all 16 strategies.
	Scenarios int
	// Datasets restricts the training datasets (default: all 19 built-ins).
	Datasets []string
	// Seed fixes all randomness.
	Seed uint64
	// MaxEvals bounds real compute per strategy run; 0 means 60.
	MaxEvals int
	// HPO enables hyperparameter grids during training runs.
	HPO bool
}

// TrainAdvisor self-generates training data exactly as Algorithm 1
// describes — sample scenarios, verify per strategy whether it satisfies
// them — and fits the meta-models. Expect roughly a minute of compute at the
// default scale; persist and reuse the Advisor across selections.
func TrainAdvisor(cfg AdvisorConfig) (*Advisor, error) {
	if cfg.Scenarios == 0 {
		cfg.Scenarios = 40
	}
	if cfg.MaxEvals == 0 {
		cfg.MaxEvals = 60
	}
	pool, err := bench.BuildPool(bench.Config{
		Scenarios: cfg.Scenarios,
		Seed:      cfg.Seed,
		HPO:       cfg.HPO,
		MaxEvals:  cfg.MaxEvals,
		Datasets:  cfg.Datasets,
	})
	if err != nil {
		return nil, fmt.Errorf("dfs: generating advisor training data: %w", err)
	}
	var examples []optimizer.Example
	for i := range pool.Records {
		r := &pool.Records[i]
		sat := make(map[string]bool, len(core.StrategyNames))
		for _, s := range core.StrategyNames {
			sat[s] = r.Results[s].Satisfied
		}
		examples = append(examples, optimizer.Example{X: r.MetaX, Satisfied: sat})
	}
	opt, err := optimizer.Train(examples, core.StrategyNames, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Advisor{opt: opt}, nil
}

// Save persists the trained advisor as a JSON document, so the expensive
// self-training runs once and the model is reloaded with LoadAdvisor.
func (a *Advisor) Save(w io.Writer) error { return a.opt.Write(w) }

// LoadAdvisor restores an advisor persisted with Save.
func LoadAdvisor(r io.Reader) (*Advisor, error) {
	opt, err := optimizer.Read(r)
	if err != nil {
		return nil, err
	}
	return &Advisor{opt: opt}, nil
}

// Recommend returns all 16 strategies ranked by predicted probability of
// satisfying the scenario, best first.
func (a *Advisor) Recommend(d *Dataset, kind ModelKind, cs Constraints, opts ...Option) ([]string, error) {
	x, err := a.featurize(d, kind, cs, opts)
	if err != nil {
		return nil, err
	}
	return a.opt.Ranking(x), nil
}

// Select runs the advisor's top-ranked strategy on the scenario.
func (a *Advisor) Select(d *Dataset, kind ModelKind, cs Constraints, opts ...Option) (*Selection, error) {
	ranked, err := a.Recommend(d, kind, cs, opts...)
	if err != nil {
		return nil, err
	}
	return Select(d, kind, cs, append(opts, WithStrategy(ranked[0]))...)
}

// SelectDynamic implements the dynamic strategy-switching extension of the
// paper's future work: the advisor's top-k strategies run in sequence
// against one shared budget and evaluation cache — each stage gets half of
// the remaining budget, and later stages are warm-started by the subsets
// earlier stages already evaluated.
func (a *Advisor) SelectDynamic(d *Dataset, kind ModelKind, cs Constraints, topK int, opts ...Option) (*Selection, error) {
	if topK < 1 {
		topK = 3
	}
	ranked, err := a.Recommend(d, kind, cs, opts...)
	if err != nil {
		return nil, err
	}
	if topK > len(ranked) {
		topK = len(ranked)
	}
	o := buildOptions(opts)
	scn, err := newScenario(d, kind, cs, o)
	if err != nil {
		return nil, err
	}
	strategies := make([]core.Strategy, 0, topK)
	for _, name := range ranked[:topK] {
		s, err := core.New(name)
		if err != nil {
			return nil, err
		}
		strategies = append(strategies, s)
	}
	res, err := core.RunSequence(strategies, scn, o.seed, o.maxEvals)
	if err != nil {
		return nil, err
	}
	return toSelection(d, res), nil
}

// featurize builds the optimizer's ρ(D, φ, C) vector for a user scenario.
func (a *Advisor) featurize(d *Dataset, kind ModelKind, cs Constraints, opts []Option) ([]float64, error) {
	o := buildOptions(opts)
	scn, err := newScenario(d, kind, cs, o)
	if err != nil {
		return nil, err
	}
	return optimizer.Featurize(scn, xrand.NewStream(o.seed, 0xad71))
}

// SelectAuto is the declarative-AutoML extension sketched in the paper's
// future work (§7): it searches over the model family *and* the features.
// Every benchmark model (LR, NB, DT) gets an equal share of the declared
// search budget; the first satisfying selection wins, ties broken by lower
// cost. The winning model family is recorded in Selection.Model.
func SelectAuto(d *Dataset, cs Constraints, opts ...Option) (*Selection, error) {
	if err := cs.Validate(); err != nil {
		return nil, err
	}
	perModel := cs
	perModel.MaxSearchCost = cs.MaxSearchCost / 3
	var best *Selection
	for _, kind := range []ModelKind{LR, NB, DT} {
		sel, err := Select(d, kind, perModel, opts...)
		if err != nil {
			return nil, err
		}
		sel.Model = kind
		if best == nil || betterSelection(sel, best) {
			best = sel
		}
	}
	return best, nil
}
