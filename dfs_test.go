package dfs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestStrategiesList(t *testing.T) {
	s := Strategies()
	if len(s) != 16 {
		t.Fatalf("strategies %d, want 16", len(s))
	}
	joined := strings.Join(s, ",")
	for _, want := range []string{"SFFS(NR)", "TPE(FCBF)", "NSGA-II(NR)", "ES(NR)"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing strategy %s", want)
		}
	}
	// Returned slice must be a copy.
	s[0] = "mutated"
	if Strategies()[0] == "mutated" {
		t.Fatal("Strategies leaks internal state")
	}
}

func TestBuiltinDatasets(t *testing.T) {
	names := BuiltinDatasets()
	if len(names) != 19 {
		t.Fatalf("builtin datasets %d, want 19", len(names))
	}
	d, err := GenerateBuiltin("COMPAS", 42)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() == 0 || d.Features() == 0 {
		t.Fatal("empty generated dataset")
	}
	if _, err := GenerateBuiltin("nope", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestSelectSatisfiesEasyConstraints(t *testing.T) {
	d, err := GenerateBuiltin("COMPAS", 42)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(d, LR, Constraints{MinF1: 0.5, MaxSearchCost: 5000, MaxFeatureFrac: 1},
		WithSeed(3), WithMaxEvaluations(60))
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Satisfied {
		t.Fatalf("easy scenario unsatisfied (best distance %v)", sel.BestDistance)
	}
	if sel.Strategy != "SFFS(NR)" {
		t.Fatalf("default strategy %q", sel.Strategy)
	}
	if len(sel.Features) == 0 || len(sel.FeatureNames) != len(sel.Features) {
		t.Fatalf("features %v names %v", sel.Features, sel.FeatureNames)
	}
	if sel.Test.F1 < 0.5 {
		t.Fatalf("test F1 %v below constraint", sel.Test.F1)
	}
	if sel.Cost <= 0 {
		t.Fatal("no cost accounted")
	}
}

func TestSelectWithStrategyAndHPO(t *testing.T) {
	d, err := GenerateBuiltin("Indian Liver Patient", 7)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(d, DT, Constraints{MinF1: 0.4, MaxSearchCost: 5000, MaxFeatureFrac: 1},
		WithStrategy("TPE(Chi2)"), WithHPO(), WithSeed(5), WithMaxEvaluations(40))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Strategy != "TPE(Chi2)" {
		t.Fatalf("strategy %q", sel.Strategy)
	}
}

func TestSelectUnknownStrategy(t *testing.T) {
	d, err := GenerateBuiltin("COMPAS", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Select(d, LR, Constraints{MinF1: 0.5, MaxSearchCost: 10},
		WithStrategy("Magic")); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestSelectInvalidConstraints(t *testing.T) {
	d, err := GenerateBuiltin("COMPAS", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Select(d, LR, Constraints{MinF1: 2, MaxSearchCost: 10}); err == nil {
		t.Fatal("invalid constraints accepted")
	}
}

func TestRunPortfolioPicksASatisfyingStrategy(t *testing.T) {
	d, err := GenerateBuiltin("COMPAS", 42)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := RunPortfolio(d, LR, Constraints{MinF1: 0.5, MaxSearchCost: 5000, MaxFeatureFrac: 1},
		[]string{"SFS(NR)", "TPE(Variance)"}, WithSeed(3), WithMaxEvaluations(40))
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Satisfied {
		t.Fatalf("portfolio unsatisfied (distance %v)", sel.BestDistance)
	}
	if sel.Strategy != "SFS(NR)" && sel.Strategy != "TPE(Variance)" {
		t.Fatalf("winner %q outside portfolio", sel.Strategy)
	}
}

func TestRunPortfolioDefaultTop5(t *testing.T) {
	d, err := GenerateBuiltin("Brazil Tourism", 9)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := RunPortfolio(d, NB, Constraints{MinF1: 0.4, MaxSearchCost: 2000, MaxFeatureFrac: 1},
		nil, WithSeed(2), WithMaxEvaluations(25))
	if err != nil {
		t.Fatal(err)
	}
	if sel == nil {
		t.Fatal("nil selection")
	}
}

func TestCheckTransfer(t *testing.T) {
	d, err := GenerateBuiltin("COMPAS", 42)
	if err != nil {
		t.Fatal(err)
	}
	cs := Constraints{MinF1: 0.5, MaxSearchCost: 5000, MaxFeatureFrac: 1}
	sel, err := Select(d, LR, cs, WithSeed(3), WithMaxEvaluations(60))
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Satisfied {
		t.Skip("base selection unsatisfied")
	}
	scores, err := CheckTransfer(d, sel, DT, cs, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if scores.F1 < 0 || scores.F1 > 1 || scores.EO < 0 || scores.EO > 1 {
		t.Fatalf("transfer scores out of range: %+v", scores)
	}
	if _, err := CheckTransfer(d, &Selection{}, DT, cs); err == nil {
		t.Fatal("empty selection accepted")
	}
}

func TestCSVRoundTripThroughPublicAPI(t *testing.T) {
	tab, err := GenerateBuiltinTable("COMPAS", 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != tab.Rows() {
		t.Fatal("roundtrip row count differs")
	}
	if _, err := Preprocess(got); err != nil {
		t.Fatal(err)
	}
}

func TestSelectWithWallClock(t *testing.T) {
	d, err := GenerateBuiltin("COMPAS", 42)
	if err != nil {
		t.Fatal(err)
	}
	// A real 5-second deadline is plenty for an easy scenario on this tiny
	// dataset; the point is exercising the wall-clock meter path.
	sel, err := Select(d, LR, Constraints{MinF1: 0.5, MaxSearchCost: 1, MaxFeatureFrac: 1},
		WithWallClock(5*time.Second), WithSeed(3), WithMaxEvaluations(40))
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Satisfied {
		t.Fatalf("wall-clock run failed (distance %v)", sel.BestDistance)
	}
	// An already-expired deadline stops immediately without error.
	sel, err = Select(d, LR, Constraints{MinF1: 0.5, MaxSearchCost: 1, MaxFeatureFrac: 1},
		WithWallClock(time.Nanosecond), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Satisfied {
		t.Fatal("expired deadline still satisfied")
	}
}

func TestSelectWithCustomConstraint(t *testing.T) {
	d, err := GenerateBuiltin("COMPAS", 42)
	if err != nil {
		t.Fatal(err)
	}
	cs := Constraints{MinF1: 0.5, MaxSearchCost: 5000, MaxFeatureFrac: 1}

	// Demographic parity as an extra declarative constraint.
	sel, err := Select(d, LR, cs,
		WithCustomConstraint("demographic parity", 0.8, DemographicParity),
		WithSeed(3), WithMaxEvaluations(80))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Satisfied {
		// Re-check the delivered feature set actually meets the custom
		// constraint on test data via transfer evaluation.
		if len(sel.Features) == 0 {
			t.Fatal("satisfied without features")
		}
	}

	// An impossible custom constraint must never be satisfied.
	impossible := func(yTrue, yPred, sensitive []int) float64 { return 0 }
	sel, err = Select(d, LR, cs,
		WithCustomConstraint("impossible", 1, impossible),
		WithSeed(3), WithMaxEvaluations(30))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Satisfied {
		t.Fatal("impossible custom constraint reported satisfied")
	}
	if sel.BestDistance < 0.9 {
		t.Fatalf("best distance %v should reflect the custom violation", sel.BestDistance)
	}

	// Invalid custom constraints are rejected.
	if _, err := Select(d, LR, cs, WithCustomConstraint("", 0.5, DemographicParity)); err == nil {
		t.Fatal("nameless custom constraint accepted")
	}
}

func TestEqualizedOddsMetricExported(t *testing.T) {
	yTrue := []int{1, 0, 1, 0}
	yPred := []int{1, 0, 1, 0}
	sens := []int{0, 0, 1, 1}
	if v := EqualizedOdds(yTrue, yPred, sens); v != 1 {
		t.Fatalf("EqualizedOdds = %v", v)
	}
	if v := DemographicParity(yTrue, yPred, sens); v != 1 {
		t.Fatalf("DemographicParity = %v", v)
	}
}

func TestPrivacySelectionUsesDPModels(t *testing.T) {
	d, err := GenerateBuiltin("COMPAS", 42)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(d, NB, Constraints{
		MinF1: 0.4, MaxSearchCost: 3000, MaxFeatureFrac: 1, PrivacyEps: 5,
	}, WithSeed(8), WithMaxEvaluations(40))
	if err != nil {
		t.Fatal(err)
	}
	// With a loose epsilon and low F1 bar this should usually succeed; in
	// any case it must not error and must report consistent scores.
	if sel.Satisfied && sel.Test.F1 < 0.4 {
		t.Fatalf("satisfied but test F1 %v below threshold", sel.Test.F1)
	}
}
