// Custom data and custom constraints: the full workflow on your own CSV.
//
// This example exports a dataset to CSV (stand-in for your own data), loads
// it back through the public API, preprocesses it with the study's standard
// pipeline, and runs DFS with a *user-defined* constraint — demographic
// parity — on top of the built-in ones. Any deterministic metric over
// (y_true, y_pred, sensitive) can be declared this way; it joins the
// distance objective and the validation-then-test confirmation like every
// built-in constraint.
//
//	go run ./examples/customdata
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	dfs "github.com/declarative-fs/dfs"
)

func main() {
	// 1. Produce a CSV — in a real project this is your data, exported in
	// the self-describing layout: feature headers "name:num" or
	// "name:cat:<cardinality>", then __target__ and __sensitive__ columns.
	dir, err := os.MkdirTemp("", "dfs-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "mydata.csv")
	tab, err := dfs.GenerateBuiltinTable("German Credit", 42)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := dfs.WriteCSV(f, tab); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	// 2. Load and preprocess (one-hot, imputation, min-max scaling).
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	raw, err := dfs.LoadCSV(rf, "my-credit-data")
	if err != nil {
		log.Fatal(err)
	}
	data, err := dfs.Preprocess(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %d rows, %d features\n", data.Name, data.Rows(), data.Features())

	// 3. Declare constraints — built-in accuracy plus custom demographic
	// parity (positive-prediction rates of the groups within 15 points).
	constraints := dfs.Constraints{
		MinF1:          0.45,
		MaxSearchCost:  4000,
		MaxFeatureFrac: 1,
	}
	sel, err := dfs.Select(data, dfs.LR, constraints,
		dfs.WithCustomConstraint("demographic parity", 0.85, dfs.DemographicParity),
		dfs.WithStrategy("SFFS(NR)"),
		dfs.WithSeed(11), dfs.WithMaxEvaluations(150))
	if err != nil {
		log.Fatal(err)
	}
	if !sel.Satisfied {
		fmt.Printf("no subset met accuracy + demographic parity (closest %.4f)\n", sel.BestDistance)
		return
	}
	fmt.Printf("selected %d features: %v\n", len(sel.Features), sel.FeatureNames)
	fmt.Printf("test F1=%.3f EO=%.3f\n", sel.Test.F1, sel.Test.EO)
}
