// Fairness: enforce equal opportunity on a COMPAS-like task, then verify the
// constraint survives a model swap.
//
// The paper's motivating insight (Figure 1, Table 7): fairness violations
// are often caused by a few biased features; removing them at the data level
// makes *any* downstream model compliant — so the model can be exchanged
// without re-running the constraint engineering.
//
//	go run ./examples/fairness
package main

import (
	"fmt"
	"log"

	dfs "github.com/declarative-fs/dfs"
)

func main() {
	data, err := dfs.GenerateBuiltin("COMPAS", 42)
	if err != nil {
		log.Fatal(err)
	}

	// Equal opportunity ≥ 0.90: the true-positive rates of the protected
	// and unprotected groups may differ by at most 10 points.
	constraints := dfs.Constraints{
		MinF1:          0.55,
		MinEO:          0.90,
		MaxSearchCost:  5000,
		MaxFeatureFrac: 1,
	}

	// Forward floating selection handles fairness constraints best in the
	// study: it can prune the specific biased features that rankings
	// designed for accuracy would keep (§6.4).
	sel, err := dfs.Select(data, dfs.LR, constraints,
		dfs.WithStrategy("SFFS(NR)"), dfs.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	if !sel.Satisfied {
		fmt.Printf("no fair subset found (closest distance %.4f)\n", sel.BestDistance)
		return
	}
	fmt.Printf("fair feature set under LR: %v\n", sel.FeatureNames)
	fmt.Printf("  test F1=%.3f EO=%.3f\n", sel.Test.F1, sel.Test.EO)

	// Swap the model: does the constraint still hold? (Table 7 reports it
	// does for ~80-95%% of scenarios.)
	for _, target := range []dfs.ModelKind{dfs.DT, dfs.NB, dfs.SVM} {
		scores, err := dfs.CheckTransfer(data, sel, target, constraints, dfs.WithSeed(7))
		if err != nil {
			log.Fatal(err)
		}
		ok := "VIOLATED"
		if scores.F1 >= constraints.MinF1 && scores.EO >= constraints.MinEO {
			ok = "holds"
		}
		fmt.Printf("  under %-3s: F1=%.3f EO=%.3f -> %s\n", target, scores.F1, scores.EO, ok)
	}
}
