// Portfolio: run several strategies in parallel on the same scenario.
//
// No single FS strategy dominates (Table 3) — but the study shows that a
// portfolio of just 5 strategies covers 94% of the satisfiable scenarios
// (Table 8). RunPortfolio with an empty list uses exactly that top-5
// combination and returns the fastest satisfying result.
//
//	go run ./examples/portfolio
package main

import (
	"fmt"
	"log"

	dfs "github.com/declarative-fs/dfs"
)

func main() {
	data, err := dfs.GenerateBuiltin("German Credit", 42)
	if err != nil {
		log.Fatal(err)
	}
	constraints := dfs.Constraints{
		MinF1:          0.45,
		MinEO:          0.85,
		MaxSearchCost:  4000,
		MaxFeatureFrac: 0.5, // at most half the features
	}

	// The study's best coverage portfolio: TPE(FCBF) + SFFS + TPE(NR) +
	// TPE(MIM) + SA (Table 8, k=5).
	sel, err := dfs.RunPortfolio(data, dfs.LR, constraints, nil,
		dfs.WithSeed(9), dfs.WithMaxEvaluations(80))
	if err != nil {
		log.Fatal(err)
	}
	if !sel.Satisfied {
		fmt.Printf("portfolio found nothing (closest distance %.4f)\n", sel.BestDistance)
		return
	}
	fmt.Printf("winner:   %s (cost %.1f units)\n", sel.Strategy, sel.Cost)
	fmt.Printf("features: %d of %d (%v)\n", len(sel.Features), data.Features(), sel.FeatureNames)
	fmt.Printf("test F1=%.3f EO=%.3f\n", sel.Test.F1, sel.Test.EO)
}
