// Quickstart: declare constraints, get a feature set.
//
// The scenario mirrors the paper's workflow (Figure 2): pick a dataset and a
// model, declare what the ML system must guarantee, and let DFS find a
// feature subset that makes any downstream model compliant.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	dfs "github.com/declarative-fs/dfs"
)

func main() {
	// A synthetic stand-in for the COMPAS recidivism dataset: 600 rows,
	// 19 features after one-hot encoding, race as the protected attribute.
	data, err := dfs.GenerateBuiltin("COMPAS", 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s (%d rows, %d features)\n", data.Name, data.Rows(), data.Features())

	// Declare the ML application constraints: a minimum F1 score and a
	// search budget. Cost units calibrate to ~1 second of a 2.6 GHz core.
	constraints := dfs.Constraints{
		MinF1:          0.60,
		MaxSearchCost:  2000,
		MaxFeatureFrac: 1, // no cap on the feature count
	}

	// Search with the default strategy (SFFS — the study's best all-round
	// performer). The library splits 3:1:1, evaluates candidate subsets on
	// validation data, and confirms the winner on test data.
	sel, err := dfs.Select(data, dfs.LR, constraints, dfs.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	if !sel.Satisfied {
		fmt.Printf("no satisfying subset found (closest distance %.4f)\n", sel.BestDistance)
		return
	}
	fmt.Printf("strategy:  %s\n", sel.Strategy)
	fmt.Printf("features:  %v\n", sel.FeatureNames)
	fmt.Printf("val  F1=%.3f EO=%.3f\n", sel.Validation.F1, sel.Validation.EO)
	fmt.Printf("test F1=%.3f EO=%.3f\n", sel.Test.F1, sel.Test.EO)
	fmt.Printf("cost:      %.1f units of %v budget\n", sel.Cost, constraints.MaxSearchCost)
}
