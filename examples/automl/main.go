// AutoML: let DFS pick the model family and the strategy, not just the
// features.
//
// Two extensions from the paper's future-work section (§7), implemented
// here: declarative AutoML (SelectAuto searches over LR, NB, and DT under
// one shared budget) and the meta-learning advisor with dynamic strategy
// switching (a self-trained optimizer ranks the 16 strategies for the
// scenario; the top ones run in sequence, warm-starting each other through
// the shared evaluation cache).
//
//	go run ./examples/automl
package main

import (
	"fmt"
	"log"

	dfs "github.com/declarative-fs/dfs"
)

func main() {
	data, err := dfs.GenerateBuiltin("Students", 42)
	if err != nil {
		log.Fatal(err)
	}
	constraints := dfs.Constraints{
		MinF1:          0.55,
		MaxSearchCost:  6000,
		MaxFeatureFrac: 0.6,
	}

	// Declarative AutoML: model + features under one budget.
	sel, err := dfs.SelectAuto(data, constraints, dfs.WithSeed(5), dfs.WithMaxEvaluations(60))
	if err != nil {
		log.Fatal(err)
	}
	if sel.Satisfied {
		fmt.Printf("SelectAuto picked %s via %s: %d features, test F1=%.3f\n",
			sel.Model, sel.Strategy, len(sel.Features), sel.Test.F1)
	} else {
		fmt.Printf("SelectAuto found nothing (closest distance %.4f)\n", sel.BestDistance)
	}

	// Meta-learning advisor: train once (here on a tiny self-generated
	// pool; persist and reuse in real deployments), then ask it which
	// strategy fits a scenario before spending any search budget.
	fmt.Println("training advisor on self-generated scenarios...")
	advisor, err := dfs.TrainAdvisor(dfs.AdvisorConfig{
		Scenarios: 12,
		Datasets:  []string{"COMPAS", "Students", "Brazil Tourism"},
		Seed:      3,
		MaxEvals:  30,
	})
	if err != nil {
		log.Fatal(err)
	}
	ranked, err := advisor.Recommend(data, dfs.LR, constraints, dfs.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advisor ranking (top 5): %v\n", ranked[:5])

	// Dynamic switching: the top-3 strategies share one budget; each stage
	// gets half of what remains and hands over when it stalls.
	dyn, err := advisor.SelectDynamic(data, dfs.LR, constraints, 3,
		dfs.WithSeed(5), dfs.WithMaxEvaluations(120))
	if err != nil {
		log.Fatal(err)
	}
	if dyn.Satisfied {
		fmt.Printf("dynamic selection solved it with %s: test F1=%.3f EO=%.3f\n",
			dyn.Strategy, dyn.Test.F1, dyn.Test.EO)
	} else {
		fmt.Printf("dynamic selection failed (closest distance %.4f)\n", dyn.BestDistance)
	}
}
