// Safety: enforce robustness against black-box evasion attacks.
//
// The safety score is empirical robustness (§3): a HopSkipJump-style
// decision-based attack perturbs test instances until the model flips its
// prediction; safety = 1 − (F1_original − F1_attacked). Fewer features give
// the adversary fewer directions to fiddle with, so safety constraints push
// toward small feature sets (Table 5).
//
//	go run ./examples/safety
package main

import (
	"fmt"
	"log"

	dfs "github.com/declarative-fs/dfs"
)

func main() {
	data, err := dfs.GenerateBuiltin("Telco Customer Churn", 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s (%d features)\n", data.Name, data.Features())

	// Baseline: how safe is the full feature set?
	loose := dfs.Constraints{MinF1: 0.30, MinSafety: 0.01, MaxSearchCost: 6000, MaxFeatureFrac: 1}
	base, err := dfs.Select(data, dfs.DT, loose,
		dfs.WithStrategy("SFS(NR)"), dfs.WithSeed(3), dfs.WithMaxEvaluations(60))
	if err != nil {
		log.Fatal(err)
	}
	if base.Satisfied {
		fmt.Printf("baseline subset (%d features): test F1=%.3f safety=%.3f\n",
			len(base.Features), base.Test.F1, base.Test.Safety)
	}

	// Now demand robustness: the attacked F1 may drop at most 15 points.
	robust := dfs.Constraints{MinF1: 0.30, MinSafety: 0.85, MaxSearchCost: 6000, MaxFeatureFrac: 1}
	sel, err := dfs.Select(data, dfs.DT, robust,
		dfs.WithStrategy("SFFS(NR)"), dfs.WithSeed(3), dfs.WithMaxEvaluations(120))
	if err != nil {
		log.Fatal(err)
	}
	if !sel.Satisfied {
		fmt.Printf("no robust subset found (closest distance %.4f)\n", sel.BestDistance)
		return
	}
	fmt.Printf("robust subset  (%d features): test F1=%.3f safety=%.3f\n",
		len(sel.Features), sel.Test.F1, sel.Test.Safety)
	fmt.Printf("features: %v\n", sel.FeatureNames)
}
