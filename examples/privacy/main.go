// Privacy: train under an ε-differential-privacy constraint and watch
// feature selection recover accuracy.
//
// When a privacy budget is declared, DFS swaps in the differentially
// private variant of the model (here: Vaidya-style DP naive Bayes, which
// perturbs every per-feature statistic). The noise grows with the number of
// features, so under a tight ε a small informative subset beats the full
// feature set — the effect behind Table 5's privacy column.
//
//	go run ./examples/privacy
package main

import (
	"fmt"
	"log"

	dfs "github.com/declarative-fs/dfs"
)

func main() {
	data, err := dfs.GenerateBuiltin("Adult", 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s (%d features)\n", data.Name, data.Features())

	for _, eps := range []float64{10, 1, 0.05} {
		constraints := dfs.Constraints{
			MinF1:          0.55,
			PrivacyEps:     eps,
			MaxSearchCost:  4000,
			MaxFeatureFrac: 1,
		}
		// Forward selection finds the small subsets tight privacy needs.
		sel, err := dfs.Select(data, dfs.NB, constraints,
			dfs.WithStrategy("SFS(NR)"), dfs.WithSeed(5), dfs.WithMaxEvaluations(120))
		if err != nil {
			log.Fatal(err)
		}
		if sel.Satisfied {
			fmt.Printf("eps=%-5.2f satisfied with %2d features, test F1=%.3f\n",
				eps, len(sel.Features), sel.Test.F1)
		} else {
			fmt.Printf("eps=%-5.2f unsatisfied (best attempt F1=%.3f)\n", eps, sel.Validation.F1)
		}
	}
}
