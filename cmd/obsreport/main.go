// Command obsreport analyzes the JSONL span traces emitted by cmd/benchmark
// and cmd/dfsd (-trace), including size-rotated file sets: it reconstructs
// the job → pool → scenario → strategy_run span trees and prints critical
// paths per scenario, the slowest strategy runs, the memo hit-rate
// breakdown, and per-tenant job latency quantiles. With -metrics it also
// cross-checks span and event counts against a /metrics JSON snapshot from
// the same process and reports p50/p95/p99 of the serve SLO histograms.
//
// Usage:
//
//	obsreport [-json] [-top N] [-metrics metrics.json] trace.jsonl [more...]
//
// Each trace argument is expanded to its rotated siblings (trace.jsonl.N,
// oldest first) automatically. Exit status: 0 clean, 1 invariant violations
// (incomplete span trees in the newest epoch, duplicate job trees, or
// trace/counter disagreement), 2 usage or read errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/declarative-fs/dfs/internal/obs"
	"github.com/declarative-fs/dfs/internal/tracereport"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of text")
	topN := flag.Int("top", 10, "how many scenarios / strategy runs to list")
	metricsPath := flag.String("metrics", "", "a /metrics JSON snapshot to cross-check the trace against")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: obsreport [flags] trace.jsonl [more traces...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var files []string
	seen := make(map[string]bool)
	for _, arg := range flag.Args() {
		set := obs.RotatedFiles(arg)
		if len(set) == 0 {
			set = []string{arg} // let Load report the open error
		}
		for _, f := range set {
			if !seen[f] {
				seen[f] = true
				files = append(files, f)
			}
		}
	}

	opts := tracereport.Options{TopN: *topN}
	if *metricsPath != "" {
		data, err := os.ReadFile(*metricsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obsreport: %v\n", err)
			os.Exit(2)
		}
		var snap obs.Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			fmt.Fprintf(os.Stderr, "obsreport: parse %s: %v\n", *metricsPath, err)
			os.Exit(2)
		}
		opts.Metrics = &snap
	}

	trace, err := tracereport.Load(files...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "obsreport: %v\n", err)
		os.Exit(2)
	}
	report := tracereport.Build(trace, opts)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "obsreport: %v\n", err)
			os.Exit(2)
		}
	} else {
		report.WriteText(os.Stdout)
	}
	if len(report.Violations) > 0 {
		os.Exit(1)
	}
}
