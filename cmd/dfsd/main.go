// Command dfsd is the long-running declarative-feature-selection service: a
// fault-tolerant HTTP/JSON daemon that accepts scenario-selection jobs,
// executes them on a bounded worker pool, and drains gracefully.
//
// Usage:
//
//	dfsd -addr 127.0.0.1:8100 -data ./dfsd-data
//
// Submit a job, poll it, fetch the result:
//
//	curl -d '{"scenarios":6,"seed":3,"max_evals":15,"tenant":"alice"}' http://127.0.0.1:8100/jobs
//	curl http://127.0.0.1:8100/jobs/job-000000
//	curl http://127.0.0.1:8100/jobs/job-000000/result > pool.csv
//
// Robustness contract: a full queue answers 429 + Retry-After instead of
// blocking; SIGTERM/SIGINT stop admission, checkpoint in-flight jobs, and
// exit 0; restarting with the same -data directory resumes interrupted jobs
// bit-identically. A second signal during the drain force-exits with status
// 131.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/declarative-fs/dfs/internal/bench"
	"github.com/declarative-fs/dfs/internal/core"
	"github.com/declarative-fs/dfs/internal/obs"
	"github.com/declarative-fs/dfs/internal/serve"
	"github.com/declarative-fs/dfs/internal/sigctx"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8100", "listen address for the HTTP API")
	data := flag.String("data", "dfsd-data", "job directory (lifecycle files + checkpoints); reused across restarts to resume")
	queueCap := flag.Int("queue", 16, "bounded job queue capacity; a full queue rejects with 429")
	workers := flag.Int("workers", 2, "concurrent job executions")
	poolWorkers := flag.Int("pool-workers", 0, "scenario/strategy parallelism inside each job (0 = GOMAXPROCS)")
	maxScenarios := flag.Int("max-scenarios", 1000, "admission cap on a job's scenario count")
	deadline := flag.Duration("deadline", 0, "default per-job wall deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "how long a SIGTERM drain may wait for in-flight jobs to checkpoint")
	tenantBudgets := flag.String("tenant-budget", "", "per-tenant simulated-cost budgets, e.g. 'alice=50000,bob=1e6'")
	defaultBudget := flag.Float64("default-tenant-budget", 0, "budget for tenants not listed in -tenant-budget (0 = unlimited)")
	retries := flag.Int("retries", 0, "job-level transient retry attempts (0 = default policy)")
	retryBase := flag.Duration("retry-base", 250*time.Millisecond, "base backoff before the first transient retry")
	retryCap := flag.Duration("retry-cap", 5*time.Second, "backoff cap for transient retries")
	retrySeed := flag.Uint64("retry-seed", 1, "seed of the deterministic retry jitter")
	evalStore := flag.String("eval-store", "", "directory of the durable evaluation store shared across jobs and restarts (empty = disabled)")
	jobTTL := flag.Duration("job-ttl", 0, "evict terminal (done/failed) jobs older than this (0 = keep forever)")
	maxTerminalJobs := flag.Int("max-terminal-jobs", 0, "keep at most this many terminal jobs, evicting the oldest (0 = unlimited)")
	gcInterval := flag.Duration("gc-interval", time.Minute, "period of the terminal-job eviction sweep")
	tracePath := flag.String("trace", "", "append a JSONL span trace (job → pool → scenario → strategy_run) to this file; read it with cmd/obsreport")
	traceRotate := flag.Int64("trace-rotate-bytes", 64<<20, "rotate the -trace file when it would exceed this many bytes")
	traceKeep := flag.Int("trace-keep", 8, "rotated -trace files to keep; older ones are deleted")
	fanout := flag.String("fanout", "", "comma-separated worker daemon URLs; when set this daemon is a coordinator that shards every job across them instead of executing locally")
	fanoutPoll := flag.Duration("fanout-poll", 150*time.Millisecond, "coordinator's worker-status poll interval")
	fanoutShards := flag.Int("fanout-shards", 0, "micro-shards per worker for -fanout jobs (0 = 4; 1 reproduces static one-shard-per-worker partitioning)")
	faultDelay := flag.Duration("fault-delay", 0, "dev-only throttle: sleep this long before each pool build, simulating a slow worker (CI's heterogeneous fan-out smoke)")
	flag.Parse()

	budgets, err := parseBudgets(*tenantBudgets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfsd:", err)
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)

	// The trace sink appends (and rotates), so a restarted daemon extends
	// the same file set; the epoch marker tells readers where the new
	// process (and its fresh span numbering) begins. The tracer always tees
	// into the broadcast sink so GET /jobs/{id}/events sees the span stream
	// whether or not a file trace is configured.
	broadcast := obs.NewBroadcastSink(0)
	var rt *obs.Runtime
	var sink *obs.RotatingFileSink
	if *tracePath != "" {
		sink, err = obs.NewRotatingFileSink(*tracePath, *traceRotate, *traceKeep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfsd:", err)
			os.Exit(1)
		}
		tracer := obs.NewTracer(obs.MultiSink{sink, broadcast})
		tracer.Event(0, obs.EpochEvent, obs.Str("daemon", "dfsd"), obs.Str("addr", *addr))
		rt = obs.New(obs.WithTracer(tracer))
	}

	retry := core.RetryPolicy{
		MaxAttempts: *retries,
		BaseBackoff: *retryBase,
		CapBackoff:  *retryCap,
		JitterSeed:  *retrySeed,
	}

	// Coordinator mode: swap the pool builder for the fan-out. Everything
	// else — admission, drain/resume, streaming — is the ordinary server.
	var buildPool serve.PoolBuilder
	if *fanout != "" {
		var workerURLs []string
		for _, u := range strings.Split(*fanout, ",") {
			if u = strings.TrimSpace(u); u != "" {
				workerURLs = append(workerURLs, strings.TrimSuffix(u, "/"))
			}
		}
		if len(workerURLs) == 0 {
			fmt.Fprintln(os.Stderr, "dfsd: -fanout lists no worker URLs")
			os.Exit(2)
		}
		fo := &serve.Fanout{
			Workers:         workerURLs,
			SpoolDir:        filepath.Join(*data, "fanout-spool"),
			Retry:           retry,
			Poll:            *fanoutPoll,
			ShardsPerWorker: *fanoutShards,
			Logf:            logger.Printf,
		}
		buildPool = fo.BuildPool
		logger.Printf("dfsd coordinating %d workers: %s", len(workerURLs), strings.Join(workerURLs, " "))
	}
	if *faultDelay > 0 {
		// A deliberately slowed daemon for heterogeneous-fleet testing: the
		// delay precedes each pool build, so every shard job this worker takes
		// costs an extra *faultDelay of wall clock.
		inner := buildPool
		if inner == nil {
			inner = bench.BuildPoolResumed
		}
		delay := *faultDelay
		buildPool = func(ctx context.Context, cfg bench.Config, opts bench.RunOptions) (*bench.Pool, error) {
			t := time.NewTimer(delay)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return inner(ctx, cfg, opts)
		}
		logger.Printf("dfsd fault-delay: %s before every pool build", delay)
	}

	srv, err := serve.New(serve.Config{
		Dir:                 *data,
		QueueCap:            *queueCap,
		Workers:             *workers,
		PoolWorkers:         *poolWorkers,
		MaxScenarios:        *maxScenarios,
		DefaultDeadline:     *deadline,
		TenantBudgets:       budgets,
		DefaultTenantBudget: *defaultBudget,
		EvalStore:           *evalStore,
		JobTTL:              *jobTTL,
		MaxTerminalJobs:     *maxTerminalJobs,
		GCInterval:          *gcInterval,
		Retry:          retry,
		BuildPool:      buildPool,
		Obs:            rt,
		TraceBroadcast: broadcast,
		Logf:           logger.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfsd:", err)
		os.Exit(1)
	}
	if err := srv.Start(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "dfsd:", err)
		os.Exit(1)
	}
	logger.Printf("dfsd serving on http://%s (data %s, queue %d, workers %d)",
		srv.Addr(), *data, *queueCap, *workers)

	// First SIGINT/SIGTERM: graceful drain (stop admitting, checkpoint
	// in-flight jobs, persist lifecycle files, exit 0). Second signal:
	// force-exit 131 — the checkpoints are fsync'd per record, so even a
	// forced exit loses no completed scenario.
	ctx, stop := sigctx.WithSignals(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "dfsd:", err)
		os.Exit(1)
	}
	if sink != nil {
		// The drain already closed every job span; flush the tail and
		// surface any latched sink failure so an incomplete trace is loud.
		err := rt.Tracer().Err()
		if cerr := sink.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfsd: trace:", err)
			os.Exit(1)
		}
	}
	os.Exit(0)
}

// parseBudgets parses "name=units,name=units" into the tenant budget map.
func parseBudgets(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("invalid -tenant-budget entry %q (want name=units)", pair)
		}
		units, err := strconv.ParseFloat(val, 64)
		// ParseFloat accepts "NaN" and "+Inf"; a NaN budget passes every
		// comparison (spent >= limit is always false) and would silently mean
		// unlimited, so reject non-finite values along with negatives.
		if err != nil || math.IsNaN(units) || math.IsInf(units, 0) || units < 0 {
			return nil, fmt.Errorf("invalid budget for tenant %q: %q", name, val)
		}
		out[name] = units
	}
	return out, nil
}
