package main

import (
	"reflect"
	"testing"
)

// TestParseBudgets pins the -tenant-budget parser, in particular that
// non-finite values are rejected: strconv.ParseFloat happily accepts "NaN"
// and "+Inf", and a NaN budget would compare as never-exhausted.
func TestParseBudgets(t *testing.T) {
	cases := []struct {
		in   string
		want map[string]float64
		ok   bool
	}{
		{"", nil, true},
		{"alice=50000", map[string]float64{"alice": 50000}, true},
		{"alice=50000,bob=1e6", map[string]float64{"alice": 50000, "bob": 1e6}, true},
		{" alice = 50000", nil, false}, // spaces inside the pair are not trimmed around '='
		{"alice=0", map[string]float64{"alice": 0}, true},
		{"alice=NaN", nil, false},
		{"alice=nan", nil, false},
		{"alice=+Inf", nil, false},
		{"alice=Inf", nil, false},
		{"alice=-Inf", nil, false},
		{"alice=-5", nil, false},
		{"alice=", nil, false},
		{"alice", nil, false},
		{"=5", nil, false},
		{"alice=5,,", nil, false},
	}
	for _, c := range cases {
		got, err := parseBudgets(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseBudgets(%q): err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && c.want != nil && !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseBudgets(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
