// Command benchmark regenerates the tables and figures of the paper's
// evaluation section (§6) from freshly fuzzed scenario pools.
//
// Usage:
//
//	benchmark -exp all                      # everything, default scale
//	benchmark -exp table3 -scenarios 120    # one experiment, bigger pool
//	benchmark -exp figure5 -grid 5
//
// Experiments: table3 table4 table5 table6 table7 table8 table9 figure1
// figure4 figure5 all. Output goes to stdout; pass -out DIR to also write
// one text file per experiment.
//
// Scale guidance: the paper's pools took four compute-weeks; the simulated
// cost meter (see DESIGN.md §4) compresses that to minutes. -scenarios 60
// (default) gives stable orderings; 150+ tightens the numbers.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"github.com/declarative-fs/dfs/internal/bench"
	"github.com/declarative-fs/dfs/internal/core"
	"github.com/declarative-fs/dfs/internal/evalstore"
	"github.com/declarative-fs/dfs/internal/obs"
	"github.com/declarative-fs/dfs/internal/report"
	"github.com/declarative-fs/dfs/internal/sigctx"
	"github.com/declarative-fs/dfs/internal/synth"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (pool, table3..table9, figure1, figure4, figure5, all)")
	scenarios := flag.Int("scenarios", 60, "fuzzed scenarios per pool")
	seed := flag.Uint64("seed", 7, "determinism seed")
	maxEvals := flag.Int("maxevals", 120, "real-compute guard per strategy run")
	grid := flag.Int("grid", 4, "figure 5 grid resolution per axis")
	figure1N := flag.Int("figure1", 60, "figure 1 random subsets")
	outDir := flag.String("out", "", "directory for per-experiment output files (optional)")
	datasets := flag.String("datasets", "", "comma-separated dataset subset (default: all 19)")
	reportPath := flag.String("report", "", "write the paper-vs-measured EXPERIMENTS report to this file")
	dumpPath := flag.String("dump", "", "write the raw HPO scenario pool as CSV to this file")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof, /metrics, /progress on this address (e.g. 127.0.0.1:8090)")
	tracePath := flag.String("trace", "", "write a JSONL span trace of the run to this file")
	traceRotate := flag.Int64("trace-rotate-bytes", 0, "rotate the -trace file when it would exceed this many bytes (0 = single file, no rotation)")
	traceKeep := flag.Int("trace-keep", 8, "rotated -trace files to keep when -trace-rotate-bytes is set")
	progressEvery := flag.Duration("progress", 0, "print a live progress line to stderr at this interval (0 disables)")
	checkpointPrefix := flag.String("checkpoint", "", "stream completed scenarios to append-only JSONL checkpoints named PREFIX-LABEL.ckpt")
	resume := flag.Bool("resume", false, "resume -checkpoint files from an earlier run (config must match; completed scenarios are not re-run)")
	shardFlag := flag.String("shard", "", "run only shard i/n of every pool (e.g. 0/2); combine with -checkpoint, then reassemble with -merge")
	merge := flag.Bool("merge", false, "merge shard checkpoint files (positional arguments) into complete pools instead of running scenarios")
	figuresJSON := flag.String("figures-json", "", "write figure data as machine-readable JSON (non-finite values become null) to this file")
	kernelWorkers := flag.Int("kernel-workers", 0, "data-parallel goroutines inside numeric kernels per strategy run; 0 composes with the scheduler (GOMAXPROCS/workers). Never changes results")
	evalStore := flag.String("eval-store", "", "directory of the durable content-addressed evaluation store shared across runs and shards; reruns replay stored trainings bit-identically")
	flag.Parse()

	cfg := bench.Config{
		Scenarios:     *scenarios,
		Seed:          *seed,
		MaxEvals:      *maxEvals,
		KernelWorkers: *kernelWorkers,
	}
	if *datasets != "" {
		for _, d := range strings.Split(*datasets, ",") {
			cfg.Datasets = append(cfg.Datasets, strings.TrimSpace(d))
		}
	} else {
		cfg.Datasets = synth.Names()
	}
	shard, err := parseShard(*shardFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchmark:", err)
		os.Exit(2)
	}
	if *resume && *checkpointPrefix == "" {
		fmt.Fprintln(os.Stderr, "benchmark: -resume requires -checkpoint")
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel in-flight pools at their next budget charge;
	// buildPool then flushes whatever completed instead of losing the run.
	// The handler is latched: a second signal during the flush force-exits
	// with sigctx.ForceExitCode instead of being silently swallowed.
	ctx, stop := sigctx.WithSignals(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Observability is opt-in: without any of the three flags the context
	// carries no runtime and the pools run on the uninstrumented path.
	ctx, cleanup, err := setupObs(ctx, *debugAddr, *tracePath, *traceRotate, *traceKeep, *progressEvery)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchmark:", err)
		os.Exit(1)
	}
	var store *evalstore.Store
	if *evalStore != "" {
		store, err = evalstore.Open(*evalStore, evalstore.Options{Metrics: obs.FromContext(ctx).Metrics()})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
			os.Exit(1)
		}
	}
	// exit funnels every path through cleanup so flush/close failures (full
	// disk truncating the trace) surface as a nonzero exit instead of
	// silently dropping data.
	exit := func(code int) {
		if store != nil {
			// The stats line is machine-parsed by CI's evalstore-smoke job.
			fmt.Fprintf(os.Stderr, "# eval-store: %s\n", store.Stats())
			if err := store.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchmark: eval-store:", err)
				if code == 0 {
					code = 1
				}
			}
		}
		if err := cleanup(); err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}

	r := &runner{
		ctx: ctx, cfg: cfg, outDir: *outDir, grid: *grid, figure1N: *figure1N,
		seed: *seed, checkpoint: *checkpointPrefix, resume: *resume, shard: shard,
		store: store,
	}
	if *merge {
		if err := r.mergePools(flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
			exit(1)
		}
	}
	if err := r.run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "benchmark:", err)
		if errors.Is(err, errInterrupted) {
			exit(130)
		}
		exit(1)
	}
	if *reportPath != "" {
		if err := r.writeReport(*reportPath); err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "# wrote report to %s\n", *reportPath)
	}
	if *dumpPath != "" {
		if err := r.dumpPool(*dumpPath); err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "# wrote raw pool to %s\n", *dumpPath)
	}
	if *figuresJSON != "" {
		if err := r.writeFiguresJSON(*figuresJSON); err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "# wrote figure JSON to %s\n", *figuresJSON)
	}
	exit(0)
}

// parseShard parses the -shard value ("i/n"); empty means the whole pool.
func parseShard(s string) (bench.ShardSpec, error) {
	if s == "" {
		return bench.ShardSpec{}, nil
	}
	var spec bench.ShardSpec
	if _, err := fmt.Sscanf(s, "%d/%d", &spec.Index, &spec.Count); err != nil {
		return bench.ShardSpec{}, fmt.Errorf("invalid -shard %q (want i/n, e.g. 0/2)", s)
	}
	if spec.Count < 1 || spec.Index < 0 || spec.Index >= spec.Count {
		return bench.ShardSpec{}, fmt.Errorf("invalid -shard %q: index must be in [0,count)", s)
	}
	return spec, nil
}

// setupObs wires the opt-in observability surface: a JSONL tracer (-trace,
// size-rotated when -trace-rotate-bytes is set), the debug HTTP listener
// (-debug-addr), and a periodic progress line (-progress). It returns the
// runtime-carrying context and a cleanup that flushes the trace and stops
// the listener, reporting the first failure — a Flush/Close error on the
// trace file is lost data (full disk), not noise. When no flag is set the
// context is returned untouched and cleanup is a no-op.
func setupObs(ctx context.Context, debugAddr, tracePath string, traceRotate int64, traceKeep int, progressEvery time.Duration) (context.Context, func() error, error) {
	noop := func() error { return nil }
	if debugAddr == "" && tracePath == "" && progressEvery <= 0 {
		return ctx, noop, nil
	}
	var cleanups []func() error
	cleanup := func() error {
		var first error
		for i := len(cleanups) - 1; i >= 0; i-- {
			if err := cleanups[i](); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	var opts []obs.Option
	var tracer *obs.Tracer
	switch {
	case tracePath != "" && traceRotate > 0:
		sink, err := obs.NewRotatingFileSink(tracePath, traceRotate, traceKeep)
		if err != nil {
			return ctx, noop, err
		}
		tracer = obs.NewTracer(sink)
		// Rotating sinks append across runs; the epoch marker tells readers
		// (cmd/obsreport) where this run's span numbering begins.
		tracer.Event(0, obs.EpochEvent, obs.Str("daemon", "benchmark"))
		opts = append(opts, obs.WithTracer(tracer))
		cleanups = append(cleanups, func() error {
			err := tracer.Err()
			if cerr := sink.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("trace %s: %w", tracePath, err)
			}
			return nil
		})
	case tracePath != "":
		f, err := os.Create(tracePath)
		if err != nil {
			return ctx, noop, err
		}
		bw := bufio.NewWriter(f)
		tracer = obs.NewWriterTracer(bw)
		opts = append(opts, obs.WithTracer(tracer))
		cleanups = append(cleanups, func() error {
			err := tracer.Err()
			if ferr := bw.Flush(); err == nil {
				err = ferr
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("trace %s: %w", tracePath, err)
			}
			return nil
		})
	}
	rt := obs.New(opts...)
	ctx = obs.NewContext(ctx, rt)
	if debugAddr != "" {
		srv, err := obs.StartDebug(debugAddr, rt)
		if err != nil {
			if cerr := cleanup(); cerr != nil {
				fmt.Fprintln(os.Stderr, "benchmark:", cerr)
			}
			return ctx, noop, err
		}
		fmt.Fprintf(os.Stderr, "# debug listener on http://%s (pprof, /metrics, /progress)\n", srv.Addr())
		cleanups = append(cleanups, srv.Close)
	}
	if progressEvery > 0 {
		t := time.NewTicker(progressEvery)
		stopped := make(chan struct{})
		go func() {
			for {
				select {
				case <-stopped:
					return
				case <-t.C:
					fmt.Fprintln(os.Stderr, rt.Progress().Line())
				}
			}
		}()
		cleanups = append(cleanups, func() error { t.Stop(); close(stopped); return nil })
	}
	return ctx, cleanup, nil
}

// dumpPool writes the HPO pool's raw per-strategy outcomes as CSV.
func (r *runner) dumpPool(path string) error {
	hpo, err := r.getHPOPool()
	if err != nil {
		return err
	}
	return writePoolFile(path, hpo)
}

// writePoolFile writes a pool CSV, closing the file exactly once and
// reporting the first failure (a close error is a write error on buffered
// filesystems).
func writePoolFile(path string, p *bench.Pool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.WritePoolCSV(f, p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeReport regenerates every experiment (reusing cached pools) and emits
// the paper-vs-measured EXPERIMENTS document.
func (r *runner) writeReport(path string) error {
	def, err := r.getDefaultPool()
	if err != nil {
		return err
	}
	hpo, err := r.getHPOPool()
	if err != nil {
		return err
	}
	util, err := r.getUtilityPool()
	if err != nil {
		return err
	}
	eval, err := r.getOptimizerEval()
	if err != nil {
		return err
	}
	t3, err := bench.Table3(def, hpo, r.seed)
	if err != nil {
		return err
	}
	t7, err := bench.Table7(hpo, r.seed)
	if err != nil {
		return err
	}
	fig1, err := bench.Figure1(r.figure1N, r.seed)
	if err != nil {
		return err
	}
	fig5, err := bench.Figure5(bench.Figure5Config{
		GridN: r.grid, MaxEvals: r.cfg.MaxEvals, Seed: r.seed, HPO: true,
	})
	if err != nil {
		return err
	}
	doc := report.Generate(&report.Results{
		Table3:    t3,
		Table4:    bench.Table4(hpo, util),
		Table5:    bench.Table5(hpo),
		Table6:    bench.Table6(hpo),
		Table7:    t7,
		Table8:    bench.Table8(hpo),
		Table9:    bench.Table9(hpo, eval),
		Figure1:   fig1,
		Figure4:   bench.Figure4(hpo, eval),
		Figure5:   fig5,
		Scenarios: r.cfg.Scenarios,
		Seed:      r.seed,
		MaxEvals:  r.cfg.MaxEvals,
	})
	return os.WriteFile(path, []byte(doc), 0o644)
}

// writeFiguresJSON regenerates the figures (reusing cached pools) and emits
// them as one NaN-free JSON document.
func (r *runner) writeFiguresJSON(path string) error {
	hpo, err := r.getHPOPool()
	if err != nil {
		return err
	}
	eval, err := r.getOptimizerEval()
	if err != nil {
		return err
	}
	fig1, err := bench.Figure1(r.figure1N, r.seed)
	if err != nil {
		return err
	}
	fig5, err := bench.Figure5(bench.Figure5Config{
		GridN: r.grid, MaxEvals: r.cfg.MaxEvals, Seed: r.seed, HPO: true,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.WriteFiguresJSON(f, fig1, bench.Figure4(hpo, eval), fig5); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// errInterrupted reports that a signal canceled a pool build; partial
// results were already flushed, and main converts it to exit status 130.
var errInterrupted = errors.New("interrupted by signal")

type runner struct {
	ctx        context.Context
	cfg        bench.Config
	outDir     string
	grid       int
	figure1N   int
	seed       uint64
	checkpoint string // -checkpoint path prefix ("" disables)
	resume     bool
	shard      bench.ShardSpec
	store      *evalstore.Store // -eval-store handle shared by every pool ("" disables)
	mergeOnly  bool             // pools come from -merge; never rebuild silently

	defaultPool *bench.Pool
	hpoPool     *bench.Pool
	utilityPool *bench.Pool
	optEval     *bench.OptimizerEval
}

// checkpointPath names one pool's checkpoint file under the -checkpoint
// prefix; the label keeps the three pools (default-parameter, HPO,
// utility-mode) in separate files.
func (r *runner) checkpointPath(label string) string {
	return r.checkpoint + "-" + label + ".ckpt"
}

// mergePools reassembles complete pools from shard checkpoint files and
// adopts each into the runner's cache; subsequent experiments read the
// merged pools instead of rebuilding. Grouping is by checkpoint Config, so
// one -merge invocation can carry shards of several pools.
func (r *runner) mergePools(paths []string) error {
	if len(paths) == 0 {
		return errors.New("-merge needs checkpoint files as positional arguments")
	}
	// Group the files by pool identity (HPO/Mode), then merge each group.
	groups := make(map[string][]string)
	var order []string
	for _, path := range paths {
		cfg, _, err := bench.ReadCheckpoint(path)
		if err != nil {
			return err
		}
		key := fmt.Sprintf("hpo=%t mode=%d", cfg.HPO, cfg.Mode)
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], path)
	}
	for _, key := range order {
		p, err := bench.MergeShards(groups[key]...)
		if err != nil {
			return err
		}
		if p.Interrupted {
			return fmt.Errorf("merge: checkpoints %s cover only %d/%d scenarios",
				strings.Join(groups[key], ", "), len(p.Records), p.Config.Scenarios)
		}
		switch {
		case p.Config.Mode == core.ModeMaximizeUtility:
			r.utilityPool = p
		case p.Config.HPO:
			r.hpoPool = p
		default:
			r.defaultPool = p
		}
		fmt.Fprintf(os.Stderr, "# merged %d checkpoint file(s) into a %d-scenario pool (%s)\n",
			len(groups[key]), len(p.Records), key)
	}
	r.mergeOnly = true
	return nil
}

// mergedOnly guards pool getters in -merge mode: rebuilding a pool the
// merge did not provide would silently mask missing shards (and make any
// downstream diff pass trivially), so it is an error instead.
func (r *runner) mergedOnly(label string) error {
	if r.mergeOnly {
		return fmt.Errorf("-merge did not provide the %s pool; pass its shard checkpoints or drop -merge", label)
	}
	return nil
}

func (r *runner) run(exp string) error {
	switch exp {
	case "pool":
		// Build (or resume/merge) the HPO pool and nothing else: the unit of
		// work for shard workers and checkpointed runs whose tables are
		// produced later by a -merge invocation.
		_, err := r.getHPOPool()
		return err
	case "all":
		for _, e := range []string{"table3", "table4", "table5", "table6",
			"table7", "table8", "table9", "figure1", "figure4", "figure5",
			"ablation", "extension"} {
			if err := r.run(e); err != nil {
				return err
			}
		}
		return nil
	case "extension":
		seq, err := bench.SequenceExperiment("COMPAS", 10, r.seed)
		if err != nil {
			return err
		}
		return r.emit("extension",
			"Extension: dynamic strategy switching (warm-started sequence vs. best single)",
			seq.Render())
	case "ablation":
		pr, err := bench.PruningAblation("COMPAS", 5, r.seed)
		if err != nil {
			return err
		}
		fl, err := bench.FloatingAblation("COMPAS", 5, r.seed)
		if err != nil {
			return err
		}
		tp, err := bench.TPEAblation("COMPAS", 5, r.seed)
		if err != nil {
			return err
		}
		body := "-- evaluation-independent pruning (SBS under a 15% feature cap) --\n" + pr.Render() +
			"\n-- floating step (Pudil et al.) --\n" + fl.Render() +
			"\n-- TPE vs random top-k search --\n" + tp.Render()
		return r.emit("ablation", "Ablations: design choices of DESIGN.md", body)
	case "table3":
		def, err := r.getDefaultPool()
		if err != nil {
			return err
		}
		hpo, err := r.getHPOPool()
		if err != nil {
			return err
		}
		t, err := bench.Table3(def, hpo, r.seed)
		if err != nil {
			return err
		}
		return r.emit("table3", "Table 3: fastest fraction and coverage per strategy", t.Render())
	case "table4":
		hpo, err := r.getHPOPool()
		if err != nil {
			return err
		}
		util, err := r.getUtilityPool()
		if err != nil {
			return err
		}
		t := bench.Table4(hpo, util)
		return r.emit("table4", "Table 4: failure distances and utility-mode normalized F1", t.Render())
	case "table5":
		hpo, err := r.getHPOPool()
		if err != nil {
			return err
		}
		return r.emit("table5", "Table 5: coverage per declared constraint type", bench.Table5(hpo).Render())
	case "table6":
		hpo, err := r.getHPOPool()
		if err != nil {
			return err
		}
		return r.emit("table6", "Table 6: coverage per classification model", bench.Table6(hpo).Render())
	case "table7":
		hpo, err := r.getHPOPool()
		if err != nil {
			return err
		}
		t, err := bench.Table7(hpo, r.seed)
		if err != nil {
			return err
		}
		return r.emit("table7", "Table 7: feature-set transfer from LR (SFFS)", t.Render())
	case "table8":
		hpo, err := r.getHPOPool()
		if err != nil {
			return err
		}
		return r.emit("table8", "Table 8: greedy strategy portfolios", bench.Table8(hpo).Render())
	case "table9":
		hpo, err := r.getHPOPool()
		if err != nil {
			return err
		}
		eval, err := r.getOptimizerEval()
		if err != nil {
			return err
		}
		return r.emit("table9", "Table 9: meta-learning accuracy per strategy", bench.Table9(hpo, eval).Render())
	case "figure1":
		points, err := bench.Figure1(r.figure1N, r.seed)
		if err != nil {
			return err
		}
		return r.emit("figure1", "Figure 1: accuracy trade-off scatter on COMPAS", bench.RenderFigure1(points))
	case "figure4":
		hpo, err := r.getHPOPool()
		if err != nil {
			return err
		}
		eval, err := r.getOptimizerEval()
		if err != nil {
			return err
		}
		return r.emit("figure4", "Figure 4: per-dataset coverage heatmap", bench.Figure4(hpo, eval).Render())
	case "figure5":
		res, err := bench.Figure5(bench.Figure5Config{
			GridN: r.grid, MaxEvals: r.cfg.MaxEvals, Seed: r.seed, HPO: true,
		})
		if err != nil {
			return err
		}
		return r.emit("figure5", "Figure 5: fastest strategy per constraint pair on Adult", res.Render())
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func (r *runner) getDefaultPool() (*bench.Pool, error) {
	if r.defaultPool == nil {
		if err := r.mergedOnly("default-parameter"); err != nil {
			return nil, err
		}
		cfg := r.cfg
		cfg.HPO = false
		cfg.Mode = core.ModeSatisfy
		p, err := r.buildPool("default-parameter", cfg)
		if err != nil {
			return nil, err
		}
		r.defaultPool = p
	}
	return r.defaultPool, nil
}

func (r *runner) getHPOPool() (*bench.Pool, error) {
	if r.hpoPool == nil {
		if err := r.mergedOnly("HPO"); err != nil {
			return nil, err
		}
		cfg := r.cfg
		cfg.HPO = true
		cfg.Mode = core.ModeSatisfy
		cfg.Seed = r.cfg.Seed + 1
		p, err := r.buildPool("HPO", cfg)
		if err != nil {
			return nil, err
		}
		r.hpoPool = p
	}
	return r.hpoPool, nil
}

func (r *runner) getUtilityPool() (*bench.Pool, error) {
	if r.utilityPool == nil {
		if err := r.mergedOnly("utility-mode"); err != nil {
			return nil, err
		}
		cfg := r.cfg
		cfg.HPO = true
		cfg.Mode = core.ModeMaximizeUtility
		cfg.Seed = r.cfg.Seed + 2
		cfg.Scenarios = r.cfg.Scenarios / 2 // mirrors the paper's smaller utility pool
		if cfg.Scenarios == 0 {
			cfg.Scenarios = 1
		}
		p, err := r.buildPool("utility-mode", cfg)
		if err != nil {
			return nil, err
		}
		r.utilityPool = p
	}
	return r.utilityPool, nil
}

func (r *runner) getOptimizerEval() (*bench.OptimizerEval, error) {
	if r.optEval == nil {
		hpo, err := r.getHPOPool()
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(os.Stderr, "# training DFS optimizer (leave-one-dataset-out)...")
		eval, err := bench.EvaluateOptimizer(hpo, r.seed)
		if err != nil {
			return nil, err
		}
		r.optEval = eval
	}
	return r.optEval, nil
}

func (r *runner) buildPool(label string, cfg bench.Config) (*bench.Pool, error) {
	cfg.Label = label
	cfg.Shard = r.shard
	fmt.Fprintf(os.Stderr, "# building %s pool: %d scenarios on %d datasets...\n",
		label, cfg.Scenarios, len(cfg.Datasets))
	start := time.Now()
	ctx := r.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	opts := bench.RunOptions{Store: r.store}
	var cp *bench.CheckpointWriter
	ckptPath := ""
	if r.checkpoint != "" {
		ckptPath = r.checkpointPath(label)
		var err error
		if r.resume {
			var resumed []bench.Record
			cp, resumed, err = bench.ResumeCheckpoint(ckptPath, cfg)
			if err != nil {
				return nil, err
			}
			opts.Resume = resumed
			if len(resumed) > 0 {
				fmt.Fprintf(os.Stderr, "# %s: resuming %d completed scenario(s) from %s\n",
					label, len(resumed), ckptPath)
			}
		} else {
			cp, err = bench.CreateCheckpoint(ckptPath, cfg)
			if err != nil {
				return nil, err
			}
		}
		opts.Sink = cp
	}
	p, err := bench.BuildPoolResumed(ctx, cfg, opts)
	if cp != nil {
		// A checkpoint flush/close failure means the file may not reflect
		// the completed scenarios — that must fail the run even though the
		// in-memory pool is fine.
		if cerr := cp.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("checkpoint %s: %w", ckptPath, cerr)
		}
	}
	if err != nil {
		return nil, err
	}
	if p.Interrupted {
		if err := r.flushInterrupted(label, cfg, p, ckptPath); err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
		}
		return nil, fmt.Errorf("%s pool: %w", label, errInterrupted)
	}
	fmt.Fprintf(os.Stderr, "# %s pool done in %s (%d/%d satisfiable)\n",
		label, time.Since(start).Round(time.Millisecond), len(p.SatisfiableIDs()), cfg.Scenarios)
	return p, nil
}

// flushInterrupted saves whatever a canceled pool build completed — the
// partial pool CSV plus an interruption note — to -out (stderr-only when
// -out is unset), so hitting Ctrl-C does not lose the run.
func (r *runner) flushInterrupted(label string, cfg bench.Config, p *bench.Pool, ckptPath string) error {
	note := fmt.Sprintf("pool interrupted after %d/%d scenarios", len(p.Records), cfg.Scenarios)
	fmt.Fprintf(os.Stderr, "# %s: %s\n", label, note)
	if ckptPath != "" {
		fmt.Fprintf(os.Stderr, "# checkpoint retained at %s; rerun with -resume to continue\n", ckptPath)
	}
	if r.outDir == "" {
		if ckptPath == "" {
			fmt.Fprintln(os.Stderr, "# no -out directory; partial results discarded")
		}
		return nil
	}
	if err := os.MkdirAll(r.outDir, 0o755); err != nil {
		return err
	}
	csvPath := filepath.Join(r.outDir, label+"-pool-partial.csv")
	if err := writePoolFile(csvPath, p); err != nil {
		return err
	}
	notePath := filepath.Join(r.outDir, label+"-pool-interrupted.txt")
	if err := os.WriteFile(notePath, []byte(note+"\n"), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "# flushed partial pool to %s\n", csvPath)
	return nil
}

func (r *runner) emit(name, title, body string) error {
	fmt.Printf("== %s ==\n%s\n", title, body)
	if r.outDir == "" {
		return nil
	}
	if err := os.MkdirAll(r.outDir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(r.outDir, name+".txt"), []byte(body), 0o644)
}
