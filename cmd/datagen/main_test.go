package main

import (
	"os"
	"path/filepath"
	"testing"

	dfs "github.com/declarative-fs/dfs"
)

func TestSlug(t *testing.T) {
	if slug("KDD Internet Usage") != "kdd_internet_usage" {
		t.Fatalf("slug = %q", slug("KDD Internet Usage"))
	}
}

func TestExportAndReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compas.csv")
	if err := export("COMPAS", 7, path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tab, err := dfs.LoadCSV(f, "compas")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() == 0 {
		t.Fatal("empty export")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", false, 1, ""); err == nil {
		t.Fatal("no dataset and no -all accepted")
	}
	if err := run("", true, 1, ""); err == nil {
		t.Fatal("-all without -out accepted")
	}
	if err := run("nope", false, 1, filepath.Join(t.TempDir(), "x.csv")); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("exports all 19 datasets")
	}
	dir := t.TempDir()
	if err := run("", true, 3, dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 19 {
		t.Fatalf("exported %d files, want 19", len(entries))
	}
}
