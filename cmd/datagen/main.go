// Command datagen exports the built-in synthetic benchmark datasets (the
// stand-ins for the paper's Table 2) as CSV files in the package layout
// (feature headers "name:num" / "name:cat:<cardinality>", then __target__
// and __sensitive__ columns; empty cells are missing values).
//
// Usage:
//
//	datagen -dataset COMPAS -seed 42 -out compas.csv
//	datagen -all -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	dfs "github.com/declarative-fs/dfs"
)

func main() {
	name := flag.String("dataset", "", "built-in dataset name (see -list)")
	all := flag.Bool("all", false, "export all 19 datasets")
	seed := flag.Uint64("seed", 42, "generation seed")
	out := flag.String("out", "", "output file (-dataset) or directory (-all); default stdout")
	list := flag.Bool("list", false, "list built-in datasets and exit")
	describe := flag.Bool("describe", false, "print dataset statistics instead of CSV")
	flag.Parse()

	if *list {
		for _, n := range dfs.BuiltinDatasets() {
			fmt.Println(n)
		}
		return
	}
	if *describe {
		names := dfs.BuiltinDatasets()
		if *name != "" {
			names = []string{*name}
		}
		for _, n := range names {
			d, err := dfs.GenerateBuiltin(n, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "datagen:", err)
				os.Exit(1)
			}
			fmt.Println(dfs.Describe(d))
		}
		return
	}
	if err := run(*name, *all, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(name string, all bool, seed uint64, out string) error {
	switch {
	case all:
		if out == "" {
			return fmt.Errorf("-all requires -out DIR")
		}
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
		for _, n := range dfs.BuiltinDatasets() {
			path := filepath.Join(out, slug(n)+".csv")
			if err := export(n, seed, path); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		return nil
	case name != "":
		if out == "" {
			tab, err := dfs.GenerateBuiltinTable(name, seed)
			if err != nil {
				return err
			}
			return dfs.WriteCSV(os.Stdout, tab)
		}
		return export(name, seed, out)
	default:
		return fmt.Errorf("pass -dataset NAME or -all (see -h)")
	}
}

func export(name string, seed uint64, path string) error {
	tab, err := dfs.GenerateBuiltinTable(name, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := dfs.WriteCSV(f, tab); err != nil {
		return err
	}
	return f.Close()
}

func slug(name string) string {
	s := strings.ToLower(name)
	s = strings.ReplaceAll(s, " ", "_")
	return s
}
