package main

import "regexp"

// The -compare gate: diff a fresh `make bench` run against the tracked
// github-action-benchmark trajectory (dev/bench/data.js) and fail CI when a
// tracked series regresses beyond the threshold, so the gate follows the
// recorded history instead of a single frozen baseline.

// regression is one tracked series that got slower or allocates more.
type regression struct {
	Series string
	Old    float64
	New    float64
	Unit   string
	Ratio  float64 // (New-Old)/Old
}

// latestValues indexes the newest tracked value of every series in the
// trajectory; later entries win, so the gate compares against where the
// trajectory currently stands.
func latestValues(d ghaData) map[string]ghaBench {
	out := make(map[string]ghaBench)
	for _, e := range d.Entries[ghaSeries] {
		for _, b := range e.Benches {
			out[b.Name] = b
		}
	}
	return out
}

// compareRun diffs a parsed bench run against the newest tracked values:
// every ns/op and allocs/op series whose relative increase exceeds
// threshold is a regression. Series the trajectory has never tracked are
// returned as missing (informational, not failures) so a new benchmark
// doesn't break the gate before its first recorded entry; series matching
// skip are returned as skipped (tracked for trajectory, exempt from the
// gate — wall-clock scheduling benchmarks whose run-to-run variance dwarfs
// the threshold); checked counts the series actually compared.
func compareRun(results []BenchResult, d ghaData, threshold float64, skip *regexp.Regexp) (regs []regression, missing, skipped []string, checked int) {
	base := latestValues(d)
	type series struct {
		name string
		val  float64
		unit string
	}
	for _, r := range results {
		checks := []series{{r.Name, r.NsPerOp, "ns/op"}}
		if r.AllocsPerOp > 0 {
			checks = append(checks, series{r.Name + " - allocs/op", float64(r.AllocsPerOp), "allocs/op"})
		}
		for _, c := range checks {
			if skip != nil && skip.MatchString(c.name) {
				skipped = append(skipped, c.name)
				continue
			}
			b, ok := base[c.name]
			if !ok {
				missing = append(missing, c.name)
				continue
			}
			checked++
			if b.Value <= 0 {
				continue
			}
			ratio := (c.val - b.Value) / b.Value
			if ratio > threshold {
				regs = append(regs, regression{
					Series: c.name, Old: b.Value, New: c.val, Unit: c.unit, Ratio: ratio,
				})
			}
		}
	}
	return regs, missing, skipped, checked
}
