package main

import (
	"regexp"
	"testing"
)

// trajectory builds a two-entry history where BenchmarkA improved from 200
// to 100 ns/op (3 allocs) and BenchmarkB sat at 50 ns/op — the gate must
// compare against the NEWEST entry, not the oldest or an average.
func trajectory() ghaData {
	return ghaData{Entries: map[string][]ghaEntry{ghaSeries: {
		{Benches: []ghaBench{
			{Name: "BenchmarkA", Value: 200, Unit: "ns/op"},
			{Name: "BenchmarkA - allocs/op", Value: 3, Unit: "allocs/op"},
		}},
		{Benches: []ghaBench{
			{Name: "BenchmarkA", Value: 100, Unit: "ns/op"},
			{Name: "BenchmarkA - allocs/op", Value: 3, Unit: "allocs/op"},
			{Name: "BenchmarkB", Value: 50, Unit: "ns/op"},
		}},
	}}}
}

func TestCompareRunCleanWithinThreshold(t *testing.T) {
	results := []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 109, AllocsPerOp: 3}, // +9% < 10%
		{Name: "BenchmarkB", NsPerOp: 40},                  // improvement
	}
	regs, missing, _, checked := compareRun(results, trajectory(), 0.10, nil)
	if len(regs) != 0 {
		t.Fatalf("expected no regressions, got %+v", regs)
	}
	if len(missing) != 0 {
		t.Fatalf("expected no missing series, got %v", missing)
	}
	if checked != 3 { // A ns/op, A allocs/op, B ns/op
		t.Fatalf("checked = %d, want 3", checked)
	}
}

func TestCompareRunFlagsTimeRegression(t *testing.T) {
	results := []BenchResult{{Name: "BenchmarkA", NsPerOp: 150, AllocsPerOp: 3}}
	regs, _, _, _ := compareRun(results, trajectory(), 0.10, nil)
	if len(regs) != 1 {
		t.Fatalf("expected exactly 1 regression, got %+v", regs)
	}
	g := regs[0]
	if g.Series != "BenchmarkA" || g.Old != 100 || g.New != 150 || g.Unit != "ns/op" {
		t.Fatalf("unexpected regression record: %+v", g)
	}
	if g.Ratio < 0.49 || g.Ratio > 0.51 {
		t.Fatalf("ratio = %v, want ~0.5", g.Ratio)
	}
}

func TestCompareRunFlagsAllocRegression(t *testing.T) {
	results := []BenchResult{{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 4}}
	regs, _, _, _ := compareRun(results, trajectory(), 0.10, nil)
	if len(regs) != 1 || regs[0].Series != "BenchmarkA - allocs/op" {
		t.Fatalf("expected one allocs/op regression, got %+v", regs)
	}
}

func TestCompareRunUsesNewestEntry(t *testing.T) {
	// 190 ns/op would be fine against the old 200 baseline but is a 90%
	// regression against the newest tracked value of 100.
	results := []BenchResult{{Name: "BenchmarkA", NsPerOp: 190, AllocsPerOp: 3}}
	regs, _, _, _ := compareRun(results, trajectory(), 0.10, nil)
	if len(regs) != 1 || regs[0].Old != 100 {
		t.Fatalf("gate must diff against the newest entry, got %+v", regs)
	}
}

func TestCompareRunUntrackedSeriesIsNoteNotFailure(t *testing.T) {
	results := []BenchResult{{Name: "BenchmarkNew", NsPerOp: 1e9, AllocsPerOp: 1e6}}
	regs, missing, _, checked := compareRun(results, trajectory(), 0.10, nil)
	if len(regs) != 0 {
		t.Fatalf("untracked series must not fail the gate: %+v", regs)
	}
	if len(missing) != 2 || checked != 0 {
		t.Fatalf("missing = %v, checked = %d; want both series noted, none checked", missing, checked)
	}
}

func TestCompareRunMixedTrackedAndUntracked(t *testing.T) {
	// A run that both regresses a tracked series AND introduces a brand-new
	// benchmark (the same-PR case the gate must tolerate): the regression is
	// still flagged, the new series is only noted.
	results := []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 150, AllocsPerOp: 3},
		{Name: "BenchmarkFanoutMicroShards", NsPerOp: 5e8},
	}
	regs, missing, _, checked := compareRun(results, trajectory(), 0.10, nil)
	if len(regs) != 1 || regs[0].Series != "BenchmarkA" {
		t.Fatalf("tracked regression must survive untracked noise, got %+v", regs)
	}
	if len(missing) != 1 || missing[0] != "BenchmarkFanoutMicroShards" {
		t.Fatalf("missing = %v, want just the new benchmark", missing)
	}
	if checked != 2 { // A ns/op + A allocs/op; the new series is skipped
		t.Fatalf("checked = %d, want 2", checked)
	}
}

func TestCompareRunSkipExemptsSeriesFromGate(t *testing.T) {
	// A tracked series matching -compare-skip regresses wildly yet must not
	// fail the gate (the wall-clock fan-out benchmarks); an unmatched tracked
	// regression in the same run still fails.
	tr := trajectory()
	tr.Entries[ghaSeries] = append(tr.Entries[ghaSeries], ghaEntry{Benches: []ghaBench{
		{Name: "BenchmarkFanoutMicroShards", Value: 5e7, Unit: "ns/op"},
	}})
	results := []BenchResult{
		{Name: "BenchmarkFanoutMicroShards", NsPerOp: 9e7}, // +80%, exempt
		{Name: "BenchmarkA", NsPerOp: 150, AllocsPerOp: 3}, // +50%, gated
	}
	regs, missing, skipped, checked := compareRun(results, tr, 0.10, regexp.MustCompile(`^BenchmarkFanout`))
	if len(regs) != 1 || regs[0].Series != "BenchmarkA" {
		t.Fatalf("only the unmatched series may fail the gate, got %+v", regs)
	}
	if len(skipped) != 1 || skipped[0] != "BenchmarkFanoutMicroShards" {
		t.Fatalf("skipped = %v, want just the fan-out series", skipped)
	}
	if len(missing) != 0 || checked != 2 {
		t.Fatalf("missing = %v, checked = %d; want none missing, 2 checked", missing, checked)
	}
}

func TestCompareRunEmptyTrajectory(t *testing.T) {
	results := []BenchResult{{Name: "BenchmarkA", NsPerOp: 100}}
	regs, missing, _, checked := compareRun(results, ghaData{Entries: map[string][]ghaEntry{}}, 0.10, nil)
	if len(regs) != 0 || checked != 0 || len(missing) != 1 {
		t.Fatalf("empty trajectory must be all-missing: regs=%v missing=%v checked=%d", regs, missing, checked)
	}
}
