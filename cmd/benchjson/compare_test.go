package main

import "testing"

// trajectory builds a two-entry history where BenchmarkA improved from 200
// to 100 ns/op (3 allocs) and BenchmarkB sat at 50 ns/op — the gate must
// compare against the NEWEST entry, not the oldest or an average.
func trajectory() ghaData {
	return ghaData{Entries: map[string][]ghaEntry{ghaSeries: {
		{Benches: []ghaBench{
			{Name: "BenchmarkA", Value: 200, Unit: "ns/op"},
			{Name: "BenchmarkA - allocs/op", Value: 3, Unit: "allocs/op"},
		}},
		{Benches: []ghaBench{
			{Name: "BenchmarkA", Value: 100, Unit: "ns/op"},
			{Name: "BenchmarkA - allocs/op", Value: 3, Unit: "allocs/op"},
			{Name: "BenchmarkB", Value: 50, Unit: "ns/op"},
		}},
	}}}
}

func TestCompareRunCleanWithinThreshold(t *testing.T) {
	results := []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 109, AllocsPerOp: 3}, // +9% < 10%
		{Name: "BenchmarkB", NsPerOp: 40},                  // improvement
	}
	regs, missing, checked := compareRun(results, trajectory(), 0.10)
	if len(regs) != 0 {
		t.Fatalf("expected no regressions, got %+v", regs)
	}
	if len(missing) != 0 {
		t.Fatalf("expected no missing series, got %v", missing)
	}
	if checked != 3 { // A ns/op, A allocs/op, B ns/op
		t.Fatalf("checked = %d, want 3", checked)
	}
}

func TestCompareRunFlagsTimeRegression(t *testing.T) {
	results := []BenchResult{{Name: "BenchmarkA", NsPerOp: 150, AllocsPerOp: 3}}
	regs, _, _ := compareRun(results, trajectory(), 0.10)
	if len(regs) != 1 {
		t.Fatalf("expected exactly 1 regression, got %+v", regs)
	}
	g := regs[0]
	if g.Series != "BenchmarkA" || g.Old != 100 || g.New != 150 || g.Unit != "ns/op" {
		t.Fatalf("unexpected regression record: %+v", g)
	}
	if g.Ratio < 0.49 || g.Ratio > 0.51 {
		t.Fatalf("ratio = %v, want ~0.5", g.Ratio)
	}
}

func TestCompareRunFlagsAllocRegression(t *testing.T) {
	results := []BenchResult{{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 4}}
	regs, _, _ := compareRun(results, trajectory(), 0.10)
	if len(regs) != 1 || regs[0].Series != "BenchmarkA - allocs/op" {
		t.Fatalf("expected one allocs/op regression, got %+v", regs)
	}
}

func TestCompareRunUsesNewestEntry(t *testing.T) {
	// 190 ns/op would be fine against the old 200 baseline but is a 90%
	// regression against the newest tracked value of 100.
	results := []BenchResult{{Name: "BenchmarkA", NsPerOp: 190, AllocsPerOp: 3}}
	regs, _, _ := compareRun(results, trajectory(), 0.10)
	if len(regs) != 1 || regs[0].Old != 100 {
		t.Fatalf("gate must diff against the newest entry, got %+v", regs)
	}
}

func TestCompareRunUntrackedSeriesIsNoteNotFailure(t *testing.T) {
	results := []BenchResult{{Name: "BenchmarkNew", NsPerOp: 1e9, AllocsPerOp: 1e6}}
	regs, missing, checked := compareRun(results, trajectory(), 0.10)
	if len(regs) != 0 {
		t.Fatalf("untracked series must not fail the gate: %+v", regs)
	}
	if len(missing) != 2 || checked != 0 {
		t.Fatalf("missing = %v, checked = %d; want both series noted, none checked", missing, checked)
	}
}

func TestCompareRunEmptyTrajectory(t *testing.T) {
	results := []BenchResult{{Name: "BenchmarkA", NsPerOp: 100}}
	regs, missing, checked := compareRun(results, ghaData{Entries: map[string][]ghaEntry{}}, 0.10)
	if len(regs) != 0 || checked != 0 || len(missing) != 1 {
		t.Fatalf("empty trajectory must be all-missing: regs=%v missing=%v checked=%d", regs, missing, checked)
	}
}
