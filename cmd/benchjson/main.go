// Command benchjson turns `go test -bench` output into a JSON trajectory
// artifact. It reads the benchmark run from stdin (echoing it through to
// stdout so it still shows in the terminal and CI logs), parses the
// Benchmark* result lines, and appends one run object to the -out file —
// BENCH_PR5.json in the repo root — so successive PRs can diff name, ns/op,
// and allocs/op across snapshots (earlier history: BENCH_PR2.json):
//
//	go test -bench=. -benchmem -benchtime=1x -run='^$' . | go run ./cmd/benchjson -note "after kernel rewrite"
//
// With -gha it additionally appends the run to a github-action-benchmark
// data file (`window.BENCHMARK_DATA = {...}` in dev/bench/data.js), the
// format the upstream benchmark-action dashboard renders. A missing data
// file is seeded from the historical BENCH_*.json trajectories first, so the
// dashboard starts with the full history:
//
//	... | go run ./cmd/benchjson -gha dev/bench/data.js \
//	        -seed BENCH_PR2.json,BENCH_PR5.json \
//	        -commit "$(git rev-parse --short HEAD)" -commit-message "$(git log -1 --format=%s)"
//
// -seed-only rebuilds the -gha file from the seeds alone without reading
// stdin (used to regenerate the committed artifact deterministically).
//
// -compare turns the tool into a CI regression gate: instead of recording
// the run it diffs it against the newest tracked value of each series in the
// given data.js and exits 1 when ns/op or allocs/op grew by more than
// -compare-threshold (default 10%). Untracked series are notes, not
// failures, so new benchmarks don't break the gate before their first
// recorded entry, and series matching -compare-skip are tracked for the
// trajectory but never gated (wall-clock scheduling benchmarks whose
// run-to-run variance dwarfs the threshold):
//
//	... | go run ./cmd/benchjson -compare dev/bench/data.js -compare-skip '^BenchmarkFanout'
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// BenchResult is one parsed Benchmark* line.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Run is one benchmark invocation's snapshot.
type Run struct {
	Date       string        `json:"date"`
	Note       string        `json:"note,omitempty"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_PR5.json", "trajectory file to append the run to")
	note := flag.String("note", "", "free-form label for this run")
	gha := flag.String("gha", "", "github-action-benchmark data.js file to also append the run to (empty = skip)")
	commit := flag.String("commit", "", "commit id recorded in the -gha entry (default 'local')")
	commitMsg := flag.String("commit-message", "", "commit message recorded in the -gha entry")
	repoURL := flag.String("repo-url", "", "repository URL recorded in the -gha file")
	seed := flag.String("seed", "", "comma-separated BENCH_*.json trajectories that seed a missing -gha file")
	seedOnly := flag.Bool("seed-only", false, "rebuild the -gha file from -seed alone; stdin and -out are untouched")
	compare := flag.String("compare", "", "gate mode: diff the stdin run against this data.js and exit 1 on regression; nothing is written")
	compareThreshold := flag.Float64("compare-threshold", 0.10, "relative ns/op or allocs/op increase tolerated by -compare")
	compareSkip := flag.String("compare-skip", "", "regexp of series -compare tracks but never fails on (wall-clock benchmarks too timing-dependent for the threshold)")
	flag.Parse()

	if *seedOnly {
		if *gha == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -seed-only needs -gha")
			os.Exit(2)
		}
		n, err := rebuildGHA(*gha, *seed, *repoURL)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: seeded %s with %d entries\n", *gha, n)
		return
	}

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no Benchmark lines found on stdin")
		os.Exit(1)
	}

	if *compare != "" {
		d, err := loadGHA(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		var skipRE *regexp.Regexp
		if *compareSkip != "" {
			skipRE, err = regexp.Compile(*compareSkip)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: -compare-skip:", err)
				os.Exit(2)
			}
		}
		regs, missing, skipped, checked := compareRun(results, d, *compareThreshold, skipRE)
		for _, name := range missing {
			fmt.Fprintf(os.Stderr, "benchjson: note: %q has no tracked history in %s\n", name, *compare)
		}
		for _, name := range skipped {
			fmt.Fprintf(os.Stderr, "benchjson: note: %q matches -compare-skip, tracked but not gated\n", name)
		}
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION against %s (threshold %.0f%%):\n", *compare, *compareThreshold*100)
			for _, g := range regs {
				fmt.Fprintf(os.Stderr, "  %-48s %14.1f -> %14.1f %s (+%.1f%%)\n",
					g.Series, g.Old, g.New, g.Unit, 100*g.Ratio)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: no regressions beyond %.0f%% across %d tracked series (%d untracked, %d gate-exempt)\n",
			*compareThreshold*100, checked, len(missing), len(skipped))
		return
	}

	var runs []Run
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &runs); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s holds invalid JSON: %v\n", *out, err)
			os.Exit(1)
		}
	}
	now := time.Now().UTC()
	runs = append(runs, Run{
		Date:       now.Format(time.RFC3339),
		Note:       *note,
		Benchmarks: results,
	})
	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended %d benchmarks to %s (%d runs total)\n",
		len(results), *out, len(runs))

	if *gha != "" {
		c := ghaCommit{ID: *commit, Message: *commitMsg, Timestamp: now.Format(time.RFC3339)}
		if c.ID == "" {
			c.ID = "local"
		}
		if c.Message == "" {
			c.Message = *note
		}
		n, err := appendGHA(*gha, *seed, *repoURL, ghaEntry{
			Commit: c, Date: now.UnixMilli(), Tool: "go", Benches: toBenches(results),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: appended run to %s (%d entries total)\n", *gha, n)
	}
}

// The github-action-benchmark on-disk shape: a JS assignment wrapping one
// JSON object, one entry per recorded run under a named series.
const (
	ghaPrefix = "window.BENCHMARK_DATA = "
	ghaSeries = "Go Benchmark"
)

type ghaBench struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	Extra string  `json:"extra,omitempty"`
}

type ghaCommit struct {
	ID        string `json:"id"`
	Message   string `json:"message,omitempty"`
	Timestamp string `json:"timestamp,omitempty"`
}

type ghaEntry struct {
	Commit  ghaCommit  `json:"commit"`
	Date    int64      `json:"date"` // ms since epoch
	Tool    string     `json:"tool"`
	Benches []ghaBench `json:"benches"`
}

type ghaData struct {
	LastUpdate int64                 `json:"lastUpdate"`
	RepoURL    string                `json:"repoUrl"`
	Entries    map[string][]ghaEntry `json:"entries"`
}

// toBenches flattens parsed results into the dashboard's per-metric series:
// the base name carries ns/op, with " - B/op" / " - allocs/op" companions
// (the same naming the upstream action uses for `tool: go`).
func toBenches(results []BenchResult) []ghaBench {
	var out []ghaBench
	for _, r := range results {
		extra := fmt.Sprintf("%d times", r.Iterations)
		out = append(out, ghaBench{Name: r.Name, Value: r.NsPerOp, Unit: "ns/op", Extra: extra})
		if r.BytesPerOp > 0 {
			out = append(out, ghaBench{Name: r.Name + " - B/op", Value: float64(r.BytesPerOp), Unit: "B/op", Extra: extra})
		}
		if r.AllocsPerOp > 0 {
			out = append(out, ghaBench{Name: r.Name + " - allocs/op", Value: float64(r.AllocsPerOp), Unit: "allocs/op", Extra: extra})
		}
	}
	return out
}

// loadGHA parses an existing data.js; a missing file returns an empty
// structure and no error.
func loadGHA(path string) (ghaData, error) {
	d := ghaData{Entries: map[string][]ghaEntry{}}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return d, nil
	}
	if err != nil {
		return d, err
	}
	trimmed := bytes.TrimPrefix(bytes.TrimSpace(raw), []byte(ghaPrefix))
	if err := json.Unmarshal(trimmed, &d); err != nil {
		return d, fmt.Errorf("%s holds invalid BENCHMARK_DATA: %w", path, err)
	}
	if d.Entries == nil {
		d.Entries = map[string][]ghaEntry{}
	}
	return d, nil
}

func writeGHA(path string, d ghaData) error {
	out, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append([]byte(ghaPrefix), append(out, '\n')...), 0o644)
}

// seedEntries converts historical BENCH_*.json trajectories into dashboard
// entries, attributed to the snapshot file they came from.
func seedEntries(seedList string) ([]ghaEntry, error) {
	var out []ghaEntry
	for _, f := range strings.Split(seedList, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		raw, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		var runs []Run
		if err := json.Unmarshal(raw, &runs); err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		for _, r := range runs {
			msg := r.Note
			if msg == "" {
				msg = r.Date
			}
			var ms int64
			if t, err := time.Parse(time.RFC3339, r.Date); err == nil {
				ms = t.UnixMilli()
			}
			out = append(out, ghaEntry{
				Commit:  ghaCommit{ID: "seed:" + filepath.Base(f), Message: msg, Timestamp: r.Date},
				Date:    ms,
				Tool:    "go",
				Benches: toBenches(r.Benchmarks),
			})
		}
	}
	return out, nil
}

// rebuildGHA regenerates the data file from the seed trajectories alone.
// LastUpdate is the newest seeded entry's date (not wall time), so the
// committed artifact is reproducible.
func rebuildGHA(path, seedList, repoURL string) (int, error) {
	entries, err := seedEntries(seedList)
	if err != nil {
		return 0, err
	}
	d := ghaData{RepoURL: repoURL, Entries: map[string][]ghaEntry{ghaSeries: entries}}
	for _, e := range entries {
		if e.Date > d.LastUpdate {
			d.LastUpdate = e.Date
		}
	}
	return len(entries), writeGHA(path, d)
}

// appendGHA adds one entry, seeding the file from the historical
// trajectories first if it does not exist yet.
func appendGHA(path, seedList, repoURL string, e ghaEntry) (int, error) {
	d, err := loadGHA(path)
	if err != nil {
		return 0, err
	}
	if len(d.Entries[ghaSeries]) == 0 && seedList != "" {
		seeds, err := seedEntries(seedList)
		if err != nil {
			return 0, err
		}
		d.Entries[ghaSeries] = seeds
	}
	if repoURL != "" {
		d.RepoURL = repoURL
	}
	d.Entries[ghaSeries] = append(d.Entries[ghaSeries], e)
	d.LastUpdate = e.Date
	return len(d.Entries[ghaSeries]), writeGHA(path, d)
}

// parse scans go-test benchmark output, echoing every line to stdout.
// Result lines look like:
//
//	BenchmarkScenarioPool-4   1   819733028 ns/op   35363528 B/op   367807 allocs/op
func parse(f *os.File) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := BenchResult{
			Name:       strings.SplitN(fields[0], "-", 2)[0],
			Iterations: iters,
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			}
		}
		if r.NsPerOp == 0 {
			continue
		}
		out = append(out, r)
	}
	return out, sc.Err()
}
