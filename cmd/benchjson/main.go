// Command benchjson turns `go test -bench` output into a JSON trajectory
// artifact. It reads the benchmark run from stdin (echoing it through to
// stdout so it still shows in the terminal and CI logs), parses the
// Benchmark* result lines, and appends one run object to the -out file —
// BENCH_PR5.json in the repo root — so successive PRs can diff name, ns/op,
// and allocs/op across snapshots (earlier history: BENCH_PR2.json):
//
//	go test -bench=. -benchmem -benchtime=1x -run='^$' . | go run ./cmd/benchjson -note "after kernel rewrite"
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// BenchResult is one parsed Benchmark* line.
type BenchResult struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64  `json:"allocs_per_op,omitempty"`
}

// Run is one benchmark invocation's snapshot.
type Run struct {
	Date       string        `json:"date"`
	Note       string        `json:"note,omitempty"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_PR5.json", "trajectory file to append the run to")
	note := flag.String("note", "", "free-form label for this run")
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no Benchmark lines found on stdin")
		os.Exit(1)
	}

	var runs []Run
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &runs); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s holds invalid JSON: %v\n", *out, err)
			os.Exit(1)
		}
	}
	runs = append(runs, Run{
		Date:       time.Now().UTC().Format(time.RFC3339),
		Note:       *note,
		Benchmarks: results,
	})
	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended %d benchmarks to %s (%d runs total)\n",
		len(results), *out, len(runs))
}

// parse scans go-test benchmark output, echoing every line to stdout.
// Result lines look like:
//
//	BenchmarkScenarioPool-4   1   819733028 ns/op   35363528 B/op   367807 allocs/op
func parse(f *os.File) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := BenchResult{
			Name:       strings.SplitN(fields[0], "-", 2)[0],
			Iterations: iters,
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			}
		}
		if r.NsPerOp == 0 {
			continue
		}
		out = append(out, r)
	}
	return out, sc.Err()
}
