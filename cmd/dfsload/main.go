// Command dfsload is the load-test harness for dfsd: it drives a burst of
// concurrent job submissions at a running daemon and reports how admission
// control held up — accept/shed/error counts, the shed rate, and submit
// latency percentiles.
//
//	dfsload -addr http://127.0.0.1:8100 -n 2000 -concurrency 64
//
// The interesting number under overload is not throughput but the shape of
// rejection: a healthy daemon sheds excess load fast (429 + Retry-After,
// milliseconds per rejection) and loses nothing it accepted. -min-shed
// asserts the first property (the queue really was overrun), -verify the
// second: after the burst, every accepted job is polled to a terminal state
// and any job the daemon forgot counts as lost. Both turn the harness into a
// CI check that exits nonzero on violation.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8100", "base URL of the dfsd daemon")
	n := flag.Int("n", 2000, "total submissions to issue")
	concurrency := flag.Int("concurrency", 64, "concurrent submitters")
	scenarios := flag.Int("scenarios", 1, "scenarios per submitted job")
	maxEvals := flag.Int("max-evals", 8, "max_evals per submitted job (keep small: the point is admission, not compute)")
	seed := flag.Uint64("seed", 1, "base seed; submission i uses seed+i")
	tenant := flag.String("tenant", "", "tenant attributed to every job")
	minShed := flag.Float64("min-shed", -1, "fail (exit 1) unless the shed rate (429s / total) is at least this; negative disables")
	verify := flag.Bool("verify", false, "after the burst, poll every accepted job to a terminal state and fail on lost jobs")
	verifyTimeout := flag.Duration("verify-timeout", 5*time.Minute, "how long -verify waits for the accepted backlog to finish")
	stream := flag.Int("stream", 0, "follow the live result stream (?follow=1) of this many accepted jobs and fail unless each matches the final CSV byte-for-byte")
	flag.Parse()

	base := strings.TrimSuffix(*addr, "/")
	client := &http.Client{Timeout: 30 * time.Second}

	var (
		next     atomic.Int64
		mu       sync.Mutex
		accepted []string
		lat      = make([][]time.Duration, *concurrency)
		nAccept  atomic.Int64
		nShed    atomic.Int64 // 429: queue full or budget
		nUnavail atomic.Int64 // 503: draining
		nInvalid atomic.Int64 // other 4xx/5xx
		nErr     atomic.Int64 // transport errors
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(*n) {
					return
				}
				spec := fmt.Sprintf(`{"scenarios":%d,"seed":%d,"max_evals":%d,"tenant":%q}`,
					*scenarios, *seed+uint64(i), *maxEvals, *tenant)
				t0 := time.Now()
				resp, err := client.Post(base+"/jobs", "application/json", strings.NewReader(spec))
				lat[w] = append(lat[w], time.Since(t0))
				if err != nil {
					nErr.Add(1)
					continue
				}
				switch resp.StatusCode {
				case http.StatusAccepted:
					var st struct {
						ID string `json:"id"`
					}
					if json.NewDecoder(resp.Body).Decode(&st) == nil && st.ID != "" {
						mu.Lock()
						accepted = append(accepted, st.ID)
						mu.Unlock()
						nAccept.Add(1)
					} else {
						nInvalid.Add(1)
					}
				case http.StatusTooManyRequests:
					nShed.Add(1)
				case http.StatusServiceUnavailable:
					nUnavail.Add(1)
				default:
					nInvalid.Add(1)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	total := int64(*n)
	shedRate := float64(nShed.Load()) / float64(total)
	fmt.Printf("dfsload: %d submissions in %v (%.0f/s, concurrency %d)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(), *concurrency)
	fmt.Printf("  accepted %d  shed(429) %d  draining(503) %d  invalid %d  transport-errors %d\n",
		nAccept.Load(), nShed.Load(), nUnavail.Load(), nInvalid.Load(), nErr.Load())
	fmt.Printf("  shed rate %.1f%%\n", 100*shedRate)
	fmt.Printf("  submit latency p50 %v  p90 %v  p99 %v  max %v\n",
		pct(all, 0.50), pct(all, 0.90), pct(all, 0.99), pct(all, 1.00))

	exit := 0
	if *minShed >= 0 && shedRate < *minShed {
		fmt.Printf("dfsload: FAIL shed rate %.3f below required %.3f — the queue was not overrun\n", shedRate, *minShed)
		exit = 1
	}
	if nErr.Load() > 0 {
		fmt.Printf("dfsload: FAIL %d transport errors — rejections must be answered, not dropped\n", nErr.Load())
		exit = 1
	}
	if *verify {
		if lost := verifyAccepted(client, base, accepted, *verifyTimeout); lost > 0 {
			fmt.Printf("dfsload: FAIL %d accepted jobs lost\n", lost)
			exit = 1
		} else {
			fmt.Printf("dfsload: verified %d accepted jobs all reached a terminal state (zero lost)\n", len(accepted))
		}
	}
	if *stream > 0 {
		ids := accepted
		if len(ids) > *stream {
			ids = ids[:*stream]
		}
		rows, bad := streamResults(base, ids, *verifyTimeout)
		if bad > 0 {
			fmt.Printf("dfsload: FAIL %d/%d followed result streams diverged from the final CSV\n", bad, len(ids))
			exit = 1
		} else {
			fmt.Printf("dfsload: followed %d live result streams (%d CSV rows), all byte-identical to the final results\n", len(ids), rows)
		}
	}
	os.Exit(exit)
}

// streamResults follows each job's live result stream to its end and
// compares the streamed bytes against the terminal CSV dump — the streaming
// contract is that a followed stream of a job that finishes done IS the
// final CSV, streamed early. Returns total CSV data rows streamed and how
// many jobs violated the contract.
func streamResults(base string, ids []string, timeout time.Duration) (rows, bad int) {
	// No per-request timeout: a followed stream legitimately stays open for
	// the job's whole runtime. The context bounds the total wait instead.
	client := &http.Client{}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			streamed, state, err := followResult(ctx, client, base, id)
			if err != nil {
				fmt.Printf("dfsload: job %s: follow stream: %v\n", id, err)
				mu.Lock()
				bad++
				mu.Unlock()
				return
			}
			if state != "done" {
				fmt.Printf("dfsload: job %s: stream ended in state %q, not done\n", id, state)
				mu.Lock()
				bad++
				mu.Unlock()
				return
			}
			final, err := fetchResult(ctx, client, base, id)
			if err != nil {
				fmt.Printf("dfsload: job %s: final result: %v\n", id, err)
				mu.Lock()
				bad++
				mu.Unlock()
				return
			}
			mu.Lock()
			if !bytes.Equal(streamed, final) {
				fmt.Printf("dfsload: job %s: streamed CSV (%d bytes) != final CSV (%d bytes)\n", id, len(streamed), len(final))
				bad++
			} else {
				rows += bytes.Count(streamed, []byte("\n")) - 1 // minus header
			}
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	return rows, bad
}

// followResult reads GET /jobs/{id}/result?follow=1 to its end, returning
// the streamed body and the X-Dfs-Job-State trailer.
func followResult(ctx context.Context, client *http.Client, base, id string) ([]byte, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+id+"/result?follow=1", nil)
	if err != nil {
		return nil, "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, "", fmt.Errorf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	return body, resp.Trailer.Get("X-Dfs-Job-State"), nil
}

func fetchResult(ctx context.Context, client *http.Client, base, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// verifyAccepted polls every accepted job until it reaches a terminal state
// (done/failed/drained), returning how many never did — a job the daemon
// accepted and then lost track of (404) or left queued/running past the
// deadline.
func verifyAccepted(client *http.Client, base string, ids []string, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	pending := make(map[string]bool, len(ids))
	for _, id := range ids {
		pending[id] = true
	}
	lost := 0
	for len(pending) > 0 && time.Now().Before(deadline) {
		for id := range pending {
			resp, err := client.Get(base + "/jobs/" + id)
			if err != nil {
				continue // daemon momentarily unreachable; retry next sweep
			}
			var st struct {
				State string `json:"state"`
			}
			ok := resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&st) == nil
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusNotFound {
				// Accepted then forgotten: definitively lost, stop waiting on it.
				fmt.Printf("dfsload: job %s vanished after acceptance\n", id)
				lost++
				delete(pending, id)
				continue
			}
			if ok {
				switch st.State {
				case "done", "failed", "drained":
					delete(pending, id)
				}
			}
		}
		if len(pending) > 0 {
			time.Sleep(250 * time.Millisecond)
		}
	}
	return lost + len(pending)
}

// pct reads the q-quantile (0..1] of sorted latencies.
func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
