// Command dfs runs one declarative feature selection scenario described by
// a JSON spec and prints the outcome as JSON.
//
// Usage:
//
//	dfs -spec scenario.json
//	echo '{"dataset":"COMPAS","model":"LR","min_f1":0.6,"max_search_cost":1000}' | dfs -spec -
//
// Spec fields:
//
//	dataset          built-in profile name (see -list) or path to a CSV in
//	                 the package layout (feature headers name:num /
//	                 name:cat:<card>, then __target__ and __sensitive__)
//	model            LR | NB | DT | SVM              (default LR)
//	strategy         one of the 16 strategy names    (default SFFS(NR))
//	min_f1           mandatory accuracy threshold
//	max_search_cost  mandatory budget in cost units
//	max_feature_frac optional cap on the selected feature fraction
//	min_eo           optional equal-opportunity threshold
//	min_safety       optional empirical-robustness threshold
//	privacy_eps      optional differential-privacy budget ε
//	hpo              enable hyperparameter grid search
//	utility          keep optimizing F1 after satisfaction (Eq. 2)
//	seed             determinism seed                 (default 1)
//	max_evaluations  cap on trained subsets           (default 0: unlimited)
//	kernel_workers   goroutines inside numeric kernels (default 0: GOMAXPROCS;
//	                 scheduling only — results are identical at any setting)
//	eval_store       directory of the durable evaluation store; reruns of the
//	                 same spec replay stored trainings bit-identically
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	dfs "github.com/declarative-fs/dfs"
	"github.com/declarative-fs/dfs/internal/obs"
)

type spec struct {
	Dataset        string  `json:"dataset"`
	Model          string  `json:"model"`
	Strategy       string  `json:"strategy"`
	MinF1          float64 `json:"min_f1"`
	MaxSearchCost  float64 `json:"max_search_cost"`
	MaxFeatureFrac float64 `json:"max_feature_frac"`
	MinEO          float64 `json:"min_eo"`
	MinSafety      float64 `json:"min_safety"`
	PrivacyEps     float64 `json:"privacy_eps"`
	HPO            bool    `json:"hpo"`
	Utility        bool    `json:"utility"`
	Seed           uint64  `json:"seed"`
	MaxEvaluations int     `json:"max_evaluations"`
	DataSeed       uint64  `json:"data_seed"`
	KernelWorkers  int     `json:"kernel_workers"`
	EvalStore      string  `json:"eval_store"`
}

type output struct {
	Satisfied    bool       `json:"satisfied"`
	Strategy     string     `json:"strategy"`
	Features     []int      `json:"features,omitempty"`
	FeatureNames []string   `json:"feature_names,omitempty"`
	Validation   dfs.Scores `json:"validation"`
	Test         dfs.Scores `json:"test"`
	Cost         float64    `json:"cost"`
	BestDistance float64    `json:"best_distance"`
}

func main() {
	specPath := flag.String("spec", "", "path to the JSON scenario spec ('-' for stdin)")
	list := flag.Bool("list", false, "list built-in datasets and strategies, then exit")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof, /metrics, /progress on this address while the run lasts")
	tracePath := flag.String("trace", "", "write a JSONL span trace of the run to this file")
	flag.Parse()

	if *list {
		fmt.Println("datasets:")
		for _, n := range dfs.BuiltinDatasets() {
			fmt.Println("  " + n)
		}
		fmt.Println("strategies:")
		for _, n := range dfs.Strategies() {
			fmt.Println("  " + n)
		}
		return
	}
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "dfs: -spec is required (see -h)")
		os.Exit(2)
	}
	if err := run(*specPath, *debugAddr, *tracePath); err != nil {
		fmt.Fprintln(os.Stderr, "dfs:", err)
		os.Exit(1)
	}
}

// setupObs builds the optional runtime-carrying context for the run; the
// returned cleanup flushes the trace and stops the debug listener.
func setupObs(ctx context.Context, debugAddr, tracePath string) (context.Context, func(), error) {
	if debugAddr == "" && tracePath == "" {
		return ctx, func() {}, nil
	}
	var cleanups []func()
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	var opts []obs.Option
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return ctx, func() {}, err
		}
		bw := bufio.NewWriter(f)
		tracer := obs.NewWriterTracer(bw)
		opts = append(opts, obs.WithTracer(tracer))
		cleanups = append(cleanups, func() {
			if err := tracer.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "dfs: trace:", err)
			}
			bw.Flush()
			f.Close()
		})
	}
	rt := obs.New(opts...)
	ctx = obs.NewContext(ctx, rt)
	if debugAddr != "" {
		srv, err := obs.StartDebug(debugAddr, rt)
		if err != nil {
			cleanup()
			return ctx, func() {}, err
		}
		fmt.Fprintf(os.Stderr, "# debug listener on http://%s (pprof, /metrics, /progress)\n", srv.Addr())
		cleanups = append(cleanups, func() { srv.Close() })
	}
	return ctx, cleanup, nil
}

func run(specPath, debugAddr, tracePath string) error {
	var raw []byte
	var err error
	if specPath == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(specPath)
	}
	if err != nil {
		return err
	}
	var s spec
	if err := json.Unmarshal(raw, &s); err != nil {
		return fmt.Errorf("parsing spec: %w", err)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.DataSeed == 0 {
		s.DataSeed = 42
	}

	d, err := loadDataset(s)
	if err != nil {
		return err
	}
	cs := dfs.Constraints{
		MinF1:          s.MinF1,
		MaxSearchCost:  s.MaxSearchCost,
		MaxFeatureFrac: s.MaxFeatureFrac,
		MinEO:          s.MinEO,
		MinSafety:      s.MinSafety,
		PrivacyEps:     s.PrivacyEps,
	}
	if cs.MaxFeatureFrac == 0 {
		cs.MaxFeatureFrac = 1
	}
	opts := []dfs.Option{dfs.WithSeed(s.Seed)}
	if s.Strategy != "" {
		opts = append(opts, dfs.WithStrategy(s.Strategy))
	}
	if s.HPO {
		opts = append(opts, dfs.WithHPO())
	}
	if s.Utility {
		opts = append(opts, dfs.WithUtilityMode())
	}
	if s.MaxEvaluations > 0 {
		opts = append(opts, dfs.WithMaxEvaluations(s.MaxEvaluations))
	}
	if s.KernelWorkers > 0 {
		opts = append(opts, dfs.WithKernelWorkers(s.KernelWorkers))
	}
	if s.EvalStore != "" {
		opts = append(opts, dfs.WithEvalStore(s.EvalStore))
	}

	kind, err := parseModel(s.Model)
	if err != nil {
		return err
	}
	ctx, cleanup, err := setupObs(context.Background(), debugAddr, tracePath)
	if err != nil {
		return err
	}
	defer cleanup()
	sel, err := dfs.SelectContext(ctx, d, kind, cs, opts...)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(output{
		Satisfied:    sel.Satisfied,
		Strategy:     sel.Strategy,
		Features:     sel.Features,
		FeatureNames: sel.FeatureNames,
		Validation:   sel.Validation,
		Test:         sel.Test,
		Cost:         sel.Cost,
		BestDistance: sel.BestDistance,
	})
}

func loadDataset(s spec) (*dfs.Dataset, error) {
	if s.Dataset == "" {
		return nil, fmt.Errorf("spec needs a dataset")
	}
	if strings.HasSuffix(s.Dataset, ".csv") {
		f, err := os.Open(s.Dataset)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tab, err := dfs.LoadCSV(f, s.Dataset)
		if err != nil {
			return nil, err
		}
		return dfs.Preprocess(tab)
	}
	return dfs.GenerateBuiltin(s.Dataset, s.DataSeed)
}

func parseModel(name string) (dfs.ModelKind, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "", "LR":
		return dfs.LR, nil
	case "NB":
		return dfs.NB, nil
	case "DT":
		return dfs.DT, nil
	case "SVM":
		return dfs.SVM, nil
	default:
		return "", fmt.Errorf("unknown model %q (LR, NB, DT, SVM)", name)
	}
}
