package main

import (
	"os"
	"path/filepath"
	"testing"

	dfs "github.com/declarative-fs/dfs"
)

func TestParseModel(t *testing.T) {
	cases := map[string]dfs.ModelKind{
		"":    dfs.LR,
		"LR":  dfs.LR,
		"lr":  dfs.LR,
		" nb": dfs.NB,
		"DT":  dfs.DT,
		"svm": dfs.SVM,
	}
	for in, want := range cases {
		got, err := parseModel(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if got != want {
			t.Fatalf("%q parsed to %q, want %q", in, got, want)
		}
	}
	if _, err := parseModel("xgboost"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestLoadDatasetBuiltin(t *testing.T) {
	d, err := loadDataset(spec{Dataset: "COMPAS", DataSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() == 0 {
		t.Fatal("empty dataset")
	}
	if _, err := loadDataset(spec{}); err == nil {
		t.Fatal("missing dataset accepted")
	}
	if _, err := loadDataset(spec{Dataset: "missing.csv"}); err == nil {
		t.Fatal("missing CSV accepted")
	}
}

func TestLoadDatasetCSV(t *testing.T) {
	tab, err := dfs.GenerateBuiltinTable("Brazil Tourism", 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dfs.WriteCSV(f, tab); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := loadDataset(spec{Dataset: path})
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != tab.Rows() {
		t.Fatalf("rows %d != %d", d.Rows(), tab.Rows())
	}
}

func TestRunEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	specJSON := `{
		"dataset": "COMPAS",
		"model": "LR",
		"strategy": "SFS(NR)",
		"min_f1": 0.5,
		"max_search_cost": 500,
		"seed": 3,
		"max_evaluations": 30
	}`
	if err := os.WriteFile(path, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := run(filepath.Join(t.TempDir(), "missing.json"), "", ""); err == nil {
		t.Fatal("missing spec accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, "", ""); err == nil {
		t.Fatal("malformed spec accepted")
	}
}
