package dfs

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/declarative-fs/dfs/internal/core"
	"github.com/declarative-fs/dfs/internal/faultinject"
)

// withFaultyStrategies redirects strategy construction so the named
// portfolio members fire the given fault on every run, restoring the real
// constructor on test cleanup.
func withFaultyStrategies(t *testing.T, fault faultinject.Fault, names ...string) {
	t.Helper()
	faulty := make(map[string]bool, len(names))
	for _, n := range names {
		faulty[n] = true
	}
	orig := newStrategy
	newStrategy = func(name string) (core.Strategy, error) {
		s, err := orig(name)
		if err != nil || !faulty[name] {
			return s, err
		}
		return &faultinject.Strategy{Inner: s, FailFirst: 1 << 30, Fault: fault}, nil
	}
	t.Cleanup(func() { newStrategy = orig })
}

func easyCS() Constraints {
	return Constraints{MinF1: 0.5, MaxSearchCost: 5000, MaxFeatureFrac: 1}
}

func portfolioStrategies() []string {
	return []string{"TPE(FCBF)", "SFFS(NR)", "TPE(NR)", "TPE(MIM)", "SA(NR)"}
}

func TestPortfolioSurvivesOnePanickingStrategy(t *testing.T) {
	d, err := GenerateBuiltin("COMPAS", 42)
	if err != nil {
		t.Fatal(err)
	}
	withFaultyStrategies(t, faultinject.Fault{Kind: faultinject.Panic}, "TPE(NR)")

	sel, err := RunPortfolio(d, LR, easyCS(), portfolioStrategies(), WithSeed(3))
	if err != nil {
		t.Fatalf("portfolio must survive one panicking member: %v", err)
	}
	if sel.Strategy == "TPE(NR)" {
		t.Fatal("the panicked strategy cannot win")
	}
	if len(sel.Report) != 5 {
		t.Fatalf("report covers %d members, want 5", len(sel.Report))
	}
	var failed, ok int
	for _, r := range sel.Report {
		switch r.Status {
		case StrategyFailed:
			failed++
			if r.Strategy != "TPE(NR)" {
				t.Fatalf("wrong member reported failed: %q", r.Strategy)
			}
			var se *StrategyError
			if !errors.As(r.Err, &se) || !se.Panicked() {
				t.Fatalf("failure must carry the panicked StrategyError, got %v", r.Err)
			}
		default:
			ok++
			if r.Status == StrategySatisfied && r.Cost <= 0 {
				t.Fatalf("satisfied member %s reports cost %v", r.Strategy, r.Cost)
			}
		}
	}
	if failed != 1 || ok != 4 {
		t.Fatalf("report: %d failed, %d surviving", failed, ok)
	}
}

func TestPortfolioAllFailedJoinsErrors(t *testing.T) {
	d, err := GenerateBuiltin("COMPAS", 42)
	if err != nil {
		t.Fatal(err)
	}
	names := portfolioStrategies()
	withFaultyStrategies(t, faultinject.Fault{Kind: faultinject.Panic}, names...)

	_, err = RunPortfolio(d, LR, easyCS(), names, WithSeed(3))
	if err == nil {
		t.Fatal("all-members-failed portfolio must error")
	}
	for _, n := range names {
		if !strings.Contains(err.Error(), n) {
			t.Fatalf("joined error must name %s:\n%v", n, err)
		}
	}
	var se *StrategyError
	if !errors.As(err, &se) {
		t.Fatalf("joined error must expose the typed failures: %v", err)
	}
}

func TestPortfolioDegradationMatchesFaultFreeRun(t *testing.T) {
	// The surviving members' outcome must be what a fault-free portfolio of
	// just those members would have produced.
	d, err := GenerateBuiltin("COMPAS", 42)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := RunPortfolio(d, LR, easyCS(),
		[]string{"TPE(FCBF)", "SFFS(NR)", "TPE(MIM)", "SA(NR)"}, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}

	withFaultyStrategies(t, faultinject.Fault{Kind: faultinject.Panic}, "TPE(NR)")
	degraded, err := RunPortfolio(d, LR, easyCS(), portfolioStrategies(), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	a, b := *reduced, *degraded
	a.Report, b.Report = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("degraded portfolio diverged from the fault-free reduced one:\n%+v\n%+v", a, b)
	}
}

func TestSelectContextCancel(t *testing.T) {
	d, err := GenerateBuiltin("COMPAS", 42)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err = SelectContext(ctx, d, LR, easyCS(), WithSeed(3))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// "Promptly" means well under one subset evaluation (~tens of ms).
	if time.Since(start) > 2*time.Second {
		t.Fatalf("cancel took %v", time.Since(start))
	}
}

func TestPortfolioContextCancelMidRun(t *testing.T) {
	d, err := GenerateBuiltin("German Credit", 11)
	if err != nil {
		t.Fatal(err)
	}
	// Stall every member's first run long enough for the cancel to land
	// mid-portfolio, then cancel shortly after the goroutines start.
	withFaultyStrategies(t, faultinject.Fault{Kind: faultinject.Delay, Sleep: 30 * time.Millisecond},
		portfolioStrategies()...)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err = RunPortfolioContext(ctx, d, LR, easyCS(), portfolioStrategies(), WithSeed(5))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestSelectContextMatchesSelect(t *testing.T) {
	d, err := GenerateBuiltin("COMPAS", 42)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Select(d, LR, easyCS(), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	got, err := SelectContext(context.Background(), d, LR, easyCS(), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("SelectContext diverged from Select:\n%+v\n%+v", want, got)
	}
}

func TestPortfolioDeterministicAcrossRuns(t *testing.T) {
	d, err := GenerateBuiltin("COMPAS", 42)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunPortfolio(d, LR, easyCS(), nil, WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPortfolio(d, LR, easyCS(), nil, WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("portfolio not deterministic:\n%+v\n%+v", a, b)
	}
}
