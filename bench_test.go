package dfs

// One testing.B benchmark per table and figure of the paper's evaluation
// (§6). Each benchmark regenerates its experiment on a scaled-down scenario
// pool per iteration; run the full-scale versions with cmd/benchmark.
//
//	go test -bench=. -benchmem

import (
	"context"
	"sync"
	"testing"

	"github.com/declarative-fs/dfs/internal/bench"
	"github.com/declarative-fs/dfs/internal/constraint"
	"github.com/declarative-fs/dfs/internal/core"
	"github.com/declarative-fs/dfs/internal/evalstore"
)

// benchConfig is the scaled-down pool configuration shared by the table
// benchmarks.
func benchConfig(mode core.Mode, hpo bool) bench.Config {
	return bench.Config{
		Scenarios: 8,
		Seed:      7,
		HPO:       hpo,
		Mode:      mode,
		MaxEvals:  20,
		Datasets:  []string{"COMPAS", "Indian Liver Patient", "Irish Educational Transitions"},
		Sampler:   constraint.SamplerConfig{MinSearchCost: 10, MaxSearchCost: 1500},
	}
}

var (
	poolOnce    sync.Once
	defaultPool *bench.Pool
	hpoPool     *bench.Pool
	utilityPool *bench.Pool
	poolErr     error
)

// pools builds the three shared scenario pools (default params, HPO,
// utility mode) once; the table benchmarks measure only the aggregation on
// top of them unless they explicitly rebuild.
func pools(b *testing.B) (*bench.Pool, *bench.Pool, *bench.Pool) {
	b.Helper()
	poolOnce.Do(func() {
		defaultPool, poolErr = bench.BuildPool(benchConfig(core.ModeSatisfy, false))
		if poolErr != nil {
			return
		}
		hpoPool, poolErr = bench.BuildPool(benchConfig(core.ModeSatisfy, true))
		if poolErr != nil {
			return
		}
		utilityPool, poolErr = bench.BuildPool(benchConfig(core.ModeMaximizeUtility, true))
	})
	if poolErr != nil {
		b.Fatal(poolErr)
	}
	return defaultPool, hpoPool, utilityPool
}

// BenchmarkScenarioPool measures the end-to-end cost of fuzzing scenarios
// and running all 16 strategies plus the baseline — the raw material of
// every table.
func BenchmarkScenarioPool(b *testing.B) {
	cfg := benchConfig(core.ModeSatisfy, false)
	cfg.Scenarios = 2
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := bench.BuildPool(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioPoolWarmStore measures the same build served from a
// pre-populated durable evaluation store: every subset evaluation is a disk
// hit, so the gap to BenchmarkScenarioPool is the training time the store
// saves across reruns, shards, and restarts.
func BenchmarkScenarioPoolWarmStore(b *testing.B) {
	cfg := benchConfig(core.ModeSatisfy, false)
	cfg.Scenarios = 2
	dir := b.TempDir()
	ctx := context.Background()

	// Populate the store with every seed the timed loop will replay.
	warm := func(seed uint64) {
		cfg.Seed = seed
		store, err := evalstore.Open(dir, evalstore.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bench.BuildPoolResumed(ctx, cfg, bench.RunOptions{Store: store}); err != nil {
			store.Close()
			b.Fatal(err)
		}
		if err := store.Close(); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < b.N; i++ {
		warm(uint64(i + 1))
	}

	store, err := evalstore.Open(dir, evalstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := bench.BuildPoolResumed(ctx, cfg, bench.RunOptions{Store: store}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := store.Stats(); st.Misses > 0 {
		b.Fatalf("warm benchmark missed the store %d times: %s", st.Misses, st)
	}
}

// BenchmarkTable3 regenerates Table 3: coverage and fastest fraction per
// strategy under default parameters and HPO, plus optimizer and oracle rows.
func BenchmarkTable3(b *testing.B) {
	def, hpo, _ := pools(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table3(def, hpo, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates Table 4: failure distances and the normalized
// F1 of the utility-driven benchmark.
func BenchmarkTable4(b *testing.B) {
	_, hpo, util := pools(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Table4(hpo, util)
	}
}

// BenchmarkTable5 regenerates Table 5: coverage conditioned on the declared
// optional constraint.
func BenchmarkTable5(b *testing.B) {
	_, hpo, _ := pools(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Table5(hpo)
	}
}

// BenchmarkTable6 regenerates Table 6: coverage per classification model.
func BenchmarkTable6(b *testing.B) {
	_, hpo, _ := pools(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Table6(hpo)
	}
}

// BenchmarkTable7 regenerates Table 7: transferability of LR-found feature
// sets to DT, NB, and SVM models (includes the retraining).
func BenchmarkTable7(b *testing.B) {
	_, hpo, _ := pools(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table7(hpo, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable8 regenerates Table 8: greedy strategy portfolios for
// coverage and fastest answering.
func BenchmarkTable8(b *testing.B) {
	_, hpo, _ := pools(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Table8(hpo)
	}
}

// BenchmarkTable9 regenerates Table 9: the meta-learner's per-strategy
// precision/recall/F1 under leave-one-dataset-out (includes LODO training).
func BenchmarkTable9(b *testing.B) {
	_, hpo, _ := pools(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval, err := bench.EvaluateOptimizer(hpo, 9)
		if err != nil {
			b.Fatal(err)
		}
		bench.Table9(hpo, eval)
	}
}

// BenchmarkFigure1 regenerates Figure 1: the accuracy trade-off scatter of
// random feature subsets on COMPAS across LR, NB, and DT.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure1(6, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4: the per-dataset coverage heatmap
// with optimizer and oracle rows (includes LODO training).
func BenchmarkFigure4(b *testing.B) {
	_, hpo, _ := pools(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval, err := bench.EvaluateOptimizer(hpo, 9)
		if err != nil {
			b.Fatal(err)
		}
		bench.Figure4(hpo, eval)
	}
}

// BenchmarkFigure5 regenerates Figure 5: the fastest-strategy grid over the
// four accuracy × {EO, privacy, #features, safety} constraint pairs.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := bench.Figure5(bench.Figure5Config{
			GridN: 2, Budget: 300, MaxEvals: 10, Dataset: "COMPAS", Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPruning measures the evaluation-independent pruning
// ablation (DESIGN.md design choice, Table 1 semantics).
func BenchmarkAblationPruning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.PruningAblation("COMPAS", 2, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFloating measures the floating-step ablation
// (SFS vs SFFS, SBS vs SBFS).
func BenchmarkAblationFloating(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.FloatingAblation("COMPAS", 2, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTPE measures TPE-guided vs random top-k search.
func BenchmarkAblationTPE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.TPEAblation("COMPAS", 2, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelect measures the public API's end-to-end selection path.
func BenchmarkSelect(b *testing.B) {
	d, err := GenerateBuiltin("COMPAS", 42)
	if err != nil {
		b.Fatal(err)
	}
	cs := Constraints{MinF1: 0.6, MaxSearchCost: 500, MaxFeatureFrac: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Select(d, LR, cs, WithSeed(uint64(i+1)), WithMaxEvaluations(30)); err != nil {
			b.Fatal(err)
		}
	}
}
